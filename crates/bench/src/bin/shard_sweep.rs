//! Multi-device sharding sweep (DESIGN.md §12): strong and weak scaling
//! of the 2D block-cyclic factorization over D ∈ {1, 2, 4, 8} simulated
//! GPUs, plus the cost of a mid-run device-loss recovery →
//! `BENCH_shard.json`.
//!
//! Strong scaling fixes the matrix and grows the grid; the per-iteration
//! panel must amortize the ring broadcast and parity traffic before extra
//! devices pay off, so small matrices *lose* (the crossover sits near
//! n = 4096 on Tardis — see EXPERIMENTS.md) and the gate only requires
//! the win at the sweep's largest size. Weak scaling holds per-device
//! tile memory roughly constant (n ∝ √D) and reports per-device
//! throughput. The device-loss entry runs the same sharded configuration
//! with one device lost halfway and accounts the XOR-reconstruction pause
//! against the fault-free makespan.
//!
//! Usage: `cargo run --release -p hchol-bench --bin shard_sweep [--quick]`.
//! `--quick` caps the sweep at n = 8192 on Tardis only (the CI
//! configuration).

use hchol_core::options::{AbftOptions, ChecksumPlacement, ShardOptions};
use hchol_core::schemes::{run_clean, run_scheme, FactorOutcome, SchemeKind};
use hchol_faults::FaultPlan;
use hchol_gpusim::profile::SystemProfile;
use hchol_gpusim::ExecMode;

#[derive(serde::Serialize)]
struct StrongEntry {
    system: String,
    scheme: &'static str,
    n: usize,
    block: usize,
    devices: usize,
    secs: f64,
    /// `t(D=1) / t(D)` — above 1.0 the grid pays for itself.
    speedup_vs_one: f64,
    /// Peer-link traffic of the whole run (0 for D = 1).
    link_gib: f64,
    /// Mean per-device kernel-busy fraction of the makespan (D > 1 only).
    mean_dev_busy_frac: f64,
}

#[derive(serde::Serialize)]
struct WeakEntry {
    system: String,
    scheme: &'static str,
    n: usize,
    block: usize,
    devices: usize,
    secs: f64,
    /// `(n³/3) / (D · t)` — flat means perfect weak scaling.
    per_device_gflops: f64,
}

#[derive(serde::Serialize)]
struct LossEntry {
    system: String,
    scheme: &'static str,
    n: usize,
    block: usize,
    devices: usize,
    lost_device: usize,
    loss_iter: usize,
    faultfree_secs: f64,
    loss_secs: f64,
    recovery_secs: f64,
    recovered_tiles: u64,
    /// `(loss − faultfree) / faultfree`, percent.
    overhead_pct: f64,
}

#[derive(serde::Serialize)]
struct Report {
    quick: bool,
    strong: Vec<StrongEntry>,
    weak: Vec<WeakEntry>,
    device_loss: Vec<LossEntry>,
}

const DEVICES: &[usize] = &[1, 2, 4, 8];

fn opts_for(d: usize) -> AbftOptions {
    let o = AbftOptions::default().with_placement(ChecksumPlacement::Gpu);
    if d > 1 {
        o.with_shard(ShardOptions::new(d))
    } else {
        o
    }
}

fn timed(kind: SchemeKind, p: &SystemProfile, n: usize, b: usize, d: usize) -> FactorOutcome {
    run_clean(kind, p, ExecMode::TimingOnly, n, b, &opts_for(d), None)
        .unwrap_or_else(|e| panic!("{} n={n} D={d}: {e}", kind.name()))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let b = 256usize;
    let strong_sizes: &[usize] = if quick {
        &[2048, 8192]
    } else {
        &[2048, 4096, 8192, 16384]
    };
    let profiles: &[SystemProfile] = &if quick {
        vec![SystemProfile::tardis()]
    } else {
        vec![SystemProfile::tardis(), SystemProfile::bulldozer64()]
    };
    let schemes = [SchemeKind::Enhanced, SchemeKind::Offline];

    let mut strong = Vec::new();
    for p in profiles {
        for &kind in &schemes {
            for &n in strong_sizes {
                let mut t1 = f64::NAN;
                for &d in DEVICES {
                    let out = timed(kind, p, n, b, d);
                    let secs = out.time.as_secs();
                    if d == 1 {
                        t1 = secs;
                    }
                    let m = &out.ctx.obs.metrics;
                    let busy: f64 = (0..d)
                        .map(|i| m.sum(&format!("shard.dev.{i}.busy_secs")))
                        .sum();
                    let e = StrongEntry {
                        system: p.name.clone(),
                        scheme: kind.name(),
                        n,
                        block: b,
                        devices: d,
                        secs,
                        speedup_vs_one: t1 / secs,
                        link_gib: m.count("shard.link.bytes") as f64 / (1u64 << 30) as f64,
                        mean_dev_busy_frac: if d > 1 && secs > 0.0 {
                            busy / (d as f64 * secs)
                        } else {
                            0.0
                        },
                    };
                    println!(
                        "strong {:<12} {:<13} n={:<6} D={d}: {:>8.4}s  speedup {:>5.2}x  link {:>7.3} GiB  busy {:>5.1}%",
                        e.system,
                        e.scheme,
                        n,
                        secs,
                        e.speedup_vs_one,
                        e.link_gib,
                        e.mean_dev_busy_frac * 100.0
                    );
                    strong.push(e);
                }
            }
        }
    }

    // Weak scaling: per-device tile memory ≈ constant → n ∝ √D, rounded
    // to whole blocks.
    let n_base = if quick { 4096usize } else { 8192 };
    let mut weak = Vec::new();
    for &kind in &schemes {
        let p = SystemProfile::tardis();
        for &d in DEVICES {
            let n = ((n_base as f64 * (d as f64).sqrt()) / b as f64).round() as usize * b;
            let out = timed(kind, &p, n, b, d);
            let secs = out.time.as_secs();
            let e = WeakEntry {
                system: p.name.clone(),
                scheme: kind.name(),
                n,
                block: b,
                devices: d,
                secs,
                per_device_gflops: (n as f64).powi(3) / 3.0 / (d as f64 * secs) / 1e9,
            };
            println!(
                "weak   {:<12} {:<13} n={:<6} D={d}: {:>8.4}s  {:>8.1} GFLOP/s per device",
                e.system, e.scheme, n, secs, e.per_device_gflops
            );
            weak.push(e);
        }
    }

    // Device-loss recovery overhead: same grid, one device lost halfway.
    let mut device_loss = Vec::new();
    {
        let p = SystemProfile::tardis();
        let (n, d) = if quick {
            (2048usize, 4usize)
        } else {
            (8192, 4)
        };
        let nt = n / b;
        for &kind in &schemes {
            let clean = timed(kind, &p, n, b, d);
            let lost = run_scheme(
                kind,
                &p,
                ExecMode::TimingOnly,
                n,
                b,
                &opts_for(d),
                FaultPlan::device_loss(1, nt / 2),
                None,
            )
            .unwrap_or_else(|e| panic!("{} device-loss run: {e}", kind.name()));
            assert_eq!(lost.attempts, 1, "recovery must not restart the run");
            let (tf, tl) = (clean.time.as_secs(), lost.time.as_secs());
            let m = &lost.ctx.obs.metrics;
            let e = LossEntry {
                system: p.name.clone(),
                scheme: kind.name(),
                n,
                block: b,
                devices: d,
                lost_device: 1,
                loss_iter: nt / 2,
                faultfree_secs: tf,
                loss_secs: tl,
                recovery_secs: m.sum("shard.recovery_secs"),
                recovered_tiles: m.count("shard.recovered_tiles"),
                overhead_pct: (tl - tf) / tf * 100.0,
            };
            println!(
                "loss   {:<12} {:<13} n={:<6} D={d}: fault-free {:>8.4}s  with loss {:>8.4}s  recovery {:>8.4}s  (+{:.2}%)",
                e.system, e.scheme, n, e.faultfree_secs, e.loss_secs, e.recovery_secs, e.overhead_pct
            );
            device_loss.push(e);
        }
    }

    // Acceptance gates: at the sweep's largest size the 4-device grid
    // beats one device on Tardis for every scheme, and losing a device
    // costs measurable-but-bounded recovery time.
    let n_max = *strong_sizes.last().expect("sizes nonempty");
    for &kind in &schemes {
        let find = |d: usize| {
            strong
                .iter()
                .find(|e| {
                    e.system == "Tardis"
                        && e.scheme == kind.name()
                        && e.n == n_max
                        && e.devices == d
                })
                .expect("entry exists")
        };
        let (t1, t4) = (find(1).secs, find(4).secs);
        assert!(
            t4 < t1,
            "{} n={n_max}: D=4 ({t4:.4}s) must beat D=1 ({t1:.4}s)",
            kind.name()
        );
    }
    for e in &device_loss {
        assert!(e.recovery_secs > 0.0, "{}: free recovery", e.scheme);
        assert!(
            e.overhead_pct < 100.0,
            "{}: recovery more than doubled the run ({:.1}%)",
            e.scheme,
            e.overhead_pct
        );
    }

    let report = Report {
        quick,
        strong,
        weak,
        device_loss,
    };
    let env = hchol_obs::envelope("bench", "shard", serde::Serialize::to_value(&report));
    let json = serde_json::to_string_pretty(&env).expect("serialize report");
    // Anchor to the workspace root: cargo runs binaries from their cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    std::fs::write(path, json).expect("write BENCH_shard.json");
    println!("wrote {path}");
}
