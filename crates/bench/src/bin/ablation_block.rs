//! Ablation: block size `B`.
//!
//! DESIGN.md calls out `B` as the load-bearing constant of the overhead
//! model — Table VI's asymptote is `(2K+2)/(BK)`, so doubling `B` should
//! roughly halve the Enhanced scheme's asymptotic overhead, while too-small
//! blocks drown the run in per-kernel overheads and too-large blocks starve
//! the POTF2/GEMM overlap. This sweep holds `n` fixed and varies `B`,
//! reporting baseline time, Enhanced overhead, and the analytic prediction
//! side by side. (The paper itself pins B to MAGMA's defaults — 256 on
//! Fermi, 512 on Kepler; this experiment is an extension.)

use hchol_bench::report::{fmt_pct, Table};
use hchol_bench::runner::{overhead_pct, run_variant, Variant};
use hchol_bench::BenchArgs;
use hchol_core::options::AbftOptions;
use hchol_core::overhead::ModelParams;
use hchol_core::schemes::SchemeKind;
use hchol_faults::FaultPlan;
use hchol_gpusim::ExecMode;

fn main() {
    let args = BenchArgs::parse();
    for profile in args.systems() {
        let n = if args.quick { 5120 } else { 15360 };
        let mut t = Table::new(
            &format!(
                "Ablation — block size on {} (n = {n}, Enhanced, all optimizations, K = 1)",
                profile.name
            ),
            &[
                "B",
                "MAGMA (s)",
                "Enhanced (s)",
                "overhead",
                "model (2K+2)/(BK) + O(1/n)",
            ],
        );
        for b in [64usize, 128, 256, 512, 1024] {
            if n % b != 0 {
                continue;
            }
            let opts = AbftOptions::default();
            let base = run_variant(
                Variant::Magma,
                &profile,
                ExecMode::TimingOnly,
                n,
                b,
                &opts,
                FaultPlan::none(),
                None,
            )
            .seconds;
            let enh = run_variant(
                Variant::Scheme(SchemeKind::Enhanced),
                &profile,
                ExecMode::TimingOnly,
                n,
                b,
                &opts,
                FaultPlan::none(),
                None,
            )
            .seconds;
            let model = ModelParams::new(n, b, 1).total_relative_enhanced() * 100.0;
            t.row(&[
                b.to_string(),
                format!("{base:.3}"),
                format!("{enh:.3}"),
                fmt_pct(overhead_pct(enh, base)),
                fmt_pct(model),
            ]);
        }
        t.print();
        if args.json {
            let p = t.save_json(&format!(
                "ablation_block_{}.json",
                profile.name.to_lowercase()
            ));
            println!("table written to {}", p.display());
        }
        println!(
            "reading: overhead falls roughly as 1/B (the checksum rows shrink relative to the block) until per-iteration fixed costs take over; MAGMA's defaults sit near the sweet spot.\n"
        );
    }
}
