//! Precision sweep: the same factorization + fault campaign at f64 and
//! f32, under the fixed f64-calibrated thresholds and under the
//! variance-based adaptive tolerance → `BENCH_precision.json` at the repo
//! root.
//!
//! The artifact is the evidence for the adaptive model's claim: at f64 the
//! two tolerance models behave identically (clean runs stay silent, every
//! injected fault is caught), while at f32 the fixed thresholds sit below
//! honest single-precision round-off — clean runs trip false positives and
//! burn restarts — where the adaptive thresholds stay silent on clean runs
//! *and* still catch every injected fault. Each row also carries the
//! virtual run time so the f32 bandwidth advantage (half the bytes over
//! PCIe) is visible next to the accuracy cost.
//!
//! Usage: `cargo run --release -p hchol-bench --bin precision_sweep
//! [--quick]`. `--quick` stops at n = 192 and two schemes (the CI
//! configuration).

use hchol_core::options::AbftOptions;
use hchol_core::schemes::{run_scheme_typed, SchemeKind};
use hchol_faults::{FaultKind, FaultPlan, FaultSpec, FaultTarget, InjectionPoint};
use hchol_gpusim::profile::SystemProfile;
use hchol_gpusim::ExecMode;
use hchol_matrix::generate::spd_diag_dominant;
use hchol_matrix::{relative_residual, DType, Matrix, Scalar};

#[derive(serde::Serialize)]
struct Entry {
    scheme: String,
    dtype: &'static str,
    tolerance: &'static str,
    n: usize,
    block: usize,
    /// Clean-run behavior: spurious detections/repairs and restarts.
    clean_false_positives: usize,
    clean_attempts: usize,
    clean_residual: f64,
    /// Fault campaign: scenarios swept, runs that ended numerically
    /// correct, and runs where verification visibly acted on the fault.
    fault_runs: usize,
    fault_runs_correct: usize,
    fault_runs_detected: usize,
    /// Virtual seconds of the clean run (f32 halves the PCIe traffic).
    clean_virtual_secs: f64,
}

#[derive(serde::Serialize)]
struct Report {
    quick: bool,
    results: Vec<Entry>,
}

/// Fault grid: one computing error and one storage upset at an early and a
/// late iteration, targets in the live lower triangle. The storage bits
/// are f32-sized (exponent bit 27 + mantissa bit 10) so the comparison
/// measures threshold quality, not the separate overflow failure mode.
fn fault_grid(nt: usize) -> Vec<FaultSpec> {
    let mut v = Vec::new();
    for iter in [1usize, nt - 2] {
        for kind in [
            FaultKind::computing(),
            FaultKind::Storage { bits: vec![27, 10] },
        ] {
            v.push(FaultSpec {
                point: InjectionPoint::IterStart { iter },
                target: FaultTarget {
                    bi: (iter + 1).min(nt - 1),
                    bj: iter.min(nt - 2),
                    row: 3,
                    col: 5,
                },
                kind,
            });
        }
    }
    v
}

/// Residual below which a finished factor counts as numerically correct
/// for the precision (clean-run accuracy is ~1e-15 / ~1e-6; correction
/// precision is bounded by the checksum sums' accumulated round-off).
fn correct_bound(dtype: DType) -> f64 {
    match dtype {
        DType::F64 => 1e-11,
        DType::F32 => 2e-3,
    }
}

fn sweep_one<S: Scalar>(
    scheme: SchemeKind,
    profile: &SystemProfile,
    n: usize,
    b: usize,
    adaptive: bool,
    results: &mut Vec<Entry>,
) {
    let a64 = spd_diag_dominant(n, 7);
    let a = Matrix::<S>::from_fn(n, n, |i, j| S::from_f64(a64.get(i, j)));
    let base = AbftOptions {
        max_restarts: 2,
        ..AbftOptions::default()
    };
    let opts = if adaptive {
        base.with_adaptive_tolerance()
    } else {
        base
    };

    let clean = run_scheme_typed::<S>(
        scheme,
        profile,
        ExecMode::Execute,
        n,
        b,
        &opts,
        FaultPlan::none(),
        Some(&a),
    )
    .expect("clean run");
    let v = &clean.verify;
    let clean_false_positives =
        v.corrected_data + v.repaired_checksums + v.uncorrectable_columns + v.tiles_flagged;
    let clean_residual = clean
        .factor
        .as_ref()
        .map(|l| relative_residual(&hchol_blas::potrf::reconstruct_lower(l), &a))
        .unwrap_or(f64::INFINITY);

    let nt = n / b;
    let mut fault_runs = 0usize;
    let mut fault_runs_correct = 0usize;
    let mut fault_runs_detected = 0usize;
    for spec in fault_grid(nt) {
        let out = run_scheme_typed::<S>(
            scheme,
            profile,
            ExecMode::Execute,
            n,
            b,
            &opts,
            FaultPlan::single(spec),
            Some(&a),
        )
        .expect("faulted run");
        fault_runs += 1;
        let resid = out
            .factor
            .as_ref()
            .map(|l| relative_residual(&hchol_blas::potrf::reconstruct_lower(l), &a))
            .unwrap_or(f64::INFINITY);
        if !out.failed && resid < correct_bound(S::DTYPE) {
            fault_runs_correct += 1;
        }
        let w = &out.verify;
        if w.corrected_data + w.repaired_checksums + w.uncorrectable_columns + w.tiles_flagged > 0
            || out.attempts > 1
        {
            fault_runs_detected += 1;
        }
    }

    let entry = Entry {
        scheme: scheme.name().to_string(),
        dtype: S::DTYPE.name(),
        tolerance: if adaptive { "adaptive" } else { "fixed" },
        n,
        block: b,
        clean_false_positives,
        clean_attempts: clean.attempts,
        clean_residual,
        fault_runs,
        fault_runs_correct,
        fault_runs_detected,
        clean_virtual_secs: clean.time.as_secs(),
    };
    println!(
        "{:<20} {:<4} {:<8} n={:<5} clean fp={} attempts={} resid={:.2e} | faults {}/{} correct, {}/{} detected",
        entry.scheme,
        entry.dtype,
        entry.tolerance,
        n,
        entry.clean_false_positives,
        entry.clean_attempts,
        entry.clean_residual,
        entry.fault_runs_correct,
        entry.fault_runs,
        entry.fault_runs_detected,
        entry.fault_runs,
    );
    results.push(entry);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let profile = SystemProfile::test_profile();
    let sizes: &[usize] = if quick { &[192] } else { &[192, 384] };
    let schemes: &[SchemeKind] = if quick {
        &[SchemeKind::Enhanced, SchemeKind::Offline]
    } else {
        &[
            SchemeKind::Enhanced,
            SchemeKind::Online,
            SchemeKind::Offline,
        ]
    };
    let b = 32usize;

    let mut results = Vec::new();
    for &n in sizes {
        for &scheme in schemes {
            for adaptive in [false, true] {
                sweep_one::<f64>(scheme, &profile, n, b, adaptive, &mut results);
                sweep_one::<f32>(scheme, &profile, n, b, adaptive, &mut results);
            }
        }
    }

    // The artifact's headline claims, asserted at write time so a silent
    // regression cannot ship a plausible-looking JSON: adaptive-at-f32 must
    // be FP-free and end every faulted run numerically correct (a fault the
    // sweep leaves undetected is one whose post-transformation delta fell
    // below the adaptive threshold — by construction numerically
    // insignificant at the precision), and fixed-at-f32 must visibly
    // misbehave somewhere (that contrast is the point of the sweep).
    let adaptive_f32_clean = results
        .iter()
        .filter(|e| e.dtype == "f32" && e.tolerance == "adaptive")
        .all(|e| {
            e.clean_false_positives == 0
                && e.clean_attempts == 1
                && e.fault_runs_correct == e.fault_runs
        });
    assert!(
        adaptive_f32_clean,
        "adaptive tolerance lost its f32 guarantees"
    );
    let fixed_f32_misbehaves = results
        .iter()
        .filter(|e| e.dtype == "f32" && e.tolerance == "fixed")
        .any(|e| e.clean_false_positives > 0 || e.clean_attempts > 1 || e.clean_residual.is_nan());
    assert!(
        fixed_f32_misbehaves,
        "fixed f64 thresholds unexpectedly survived f32 round-off"
    );

    let report = Report { quick, results };
    let env = hchol_obs::envelope("bench", "precision", serde::Serialize::to_value(&report));
    let json = serde_json::to_string_pretty(&env).expect("serialize report");
    // Anchor to the workspace root: cargo runs binaries from their cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_precision.json");
    std::fs::write(path, json).expect("write BENCH_precision.json");
    println!("wrote {path}");
}
