//! Fused-epilogue verification overhead: Enhanced Online-ABFT with
//! `chk_fused` on vs. the separate-recalc baseline, against bare MAGMA,
//! on both paper systems → `BENCH_fused.json` at the repo root.
//!
//! For each system and size this reports the scheme's verification
//! overhead relative to the no-ABFT MAGMA baseline, with the checksum
//! recalculation either issued as separate GEMV-class kernels (the
//! paper's pipeline) or deposited by the SYRK/GEMM fused epilogue while
//! the output tiles are cache-hot. The JSON also splits the time the
//! verification pipeline spends on each path (`recalc_secs` vs
//! `epilogue_secs`) so the drop is attributable, not just visible.
//!
//! Usage: `cargo run --release -p hchol-bench --bin fused_overhead [--quick]`.
//! `--quick` stops at n = 1024 (the CI configuration).

use hchol_core::magma::factor_magma;
use hchol_core::options::AbftOptions;
use hchol_core::schemes::{run_clean, SchemeKind};
use hchol_gpusim::profile::SystemProfile;
use hchol_gpusim::ExecMode;

#[derive(serde::Serialize)]
struct Entry {
    system: String,
    n: usize,
    block: usize,
    magma_secs: f64,
    unfused_secs: f64,
    fused_secs: f64,
    /// (scheme − MAGMA) / MAGMA, percent.
    unfused_overhead_pct: f64,
    fused_overhead_pct: f64,
    /// Overhead removed by fusion, as a fraction of the unfused overhead.
    overhead_drop_pct: f64,
    /// Virtual time on separate recalculation kernels, each variant.
    unfused_recalc_secs: f64,
    fused_recalc_secs: f64,
    /// Virtual time charged to fused epilogues (zero for unfused).
    fused_epilogue_secs: f64,
}

#[derive(serde::Serialize)]
struct Report {
    scheme: &'static str,
    quick: bool,
    results: Vec<Entry>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[512, 1024]
    } else {
        &[512, 1024, 2048]
    };
    let mut results = Vec::new();
    for profile in [SystemProfile::tardis(), SystemProfile::bulldozer64()] {
        for &n in sizes {
            let b = profile.default_block.min(n / 4);
            let magma = factor_magma(&profile, ExecMode::TimingOnly, n, b, None, false)
                .expect("MAGMA baseline")
                .time
                .as_secs();
            let run = |fused: bool| {
                // The unfused baseline opts into recalc-time reporting so
                // both variants expose `verify.recalc_secs`.
                let opts = AbftOptions::default()
                    .with_chk_fused(fused)
                    .with_report_recalc_secs(true);
                run_clean(
                    SchemeKind::Enhanced,
                    &profile,
                    ExecMode::TimingOnly,
                    n,
                    b,
                    &opts,
                    None,
                )
                .expect("Enhanced run")
            };
            let unfused = run(false);
            let fused = run(true);
            let (tu, tf) = (unfused.time.as_secs(), fused.time.as_secs());
            let ou = (tu - magma) / magma * 100.0;
            let of = (tf - magma) / magma * 100.0;
            let entry = Entry {
                system: profile.name.clone(),
                n,
                block: b,
                magma_secs: magma,
                unfused_secs: tu,
                fused_secs: tf,
                unfused_overhead_pct: ou,
                fused_overhead_pct: of,
                overhead_drop_pct: (ou - of) / ou * 100.0,
                unfused_recalc_secs: unfused.ctx.obs.metrics.sum("verify.recalc_secs"),
                fused_recalc_secs: fused.ctx.obs.metrics.sum("verify.recalc_secs"),
                fused_epilogue_secs: fused.ctx.obs.metrics.sum("verify.fused.epilogue_secs"),
            };
            println!(
                "{:<12} n={:<5} b={:<4} MAGMA {:>8.4}s | overhead unfused {:>6.2}% fused {:>6.2}% | drop {:>5.2}%",
                entry.system, n, b, magma, ou, of, entry.overhead_drop_pct
            );
            results.push(entry);
        }
    }
    let report = Report {
        scheme: SchemeKind::Enhanced.name(),
        quick,
        results,
    };
    let env = hchol_obs::envelope("bench", "fused", serde::Serialize::to_value(&report));
    let json = serde_json::to_string_pretty(&env).expect("serialize report");
    // Anchor to the workspace root: cargo runs binaries from their cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fused.json");
    std::fs::write(path, json).expect("write BENCH_fused.json");
    println!("wrote {path}");
}
