//! Figure 2 — the Enhanced Online-ABFT overall design, as executable
//! traces: strategy (a) checksums updated on a concurrent GPU stream, and
//! strategy (b) checksums updated on the otherwise-idle CPU.
//!
//! The paper's Figure 2 is a schematic; here both assignment strategies run
//! on the simulator and print their actual timelines, making the schematic
//! checkable: in (a) the checksum work (`c`) appears on a separate GPU
//! stream, in (b) it appears on CPU worker lanes while the GPU factorizes.

use hchol_bench::BenchArgs;
use hchol_core::options::{AbftOptions, ChecksumPlacement};
use hchol_core::schemes::{run_clean, SchemeKind};
use hchol_gpusim::ExecMode;

fn main() {
    let args = BenchArgs::parse();
    let profile = args.systems().remove(0);
    let n = if args.quick { 1024 } else { 2048 };
    let b = profile.default_block.min(n / 4);

    for (tag, placement, blurb) in [
        (
            "(a)",
            ChecksumPlacement::Gpu,
            "checksum updating on a concurrent GPU stream",
        ),
        (
            "(b)",
            ChecksumPlacement::Cpu,
            "checksum updating on the idle CPU cores",
        ),
    ] {
        let opts = AbftOptions {
            record_timeline: true,
            ..AbftOptions::default().with_placement(placement)
        };
        let out = run_clean(
            SchemeKind::Enhanced,
            &profile,
            ExecMode::TimingOnly,
            n,
            b,
            &opts,
            None,
        )
        .expect("scheme runs");
        println!(
            "# Figure 2{tag} — Enhanced Online-ABFT on {}, {blurb} (n = {n}, B = {b})",
            profile.name
        );
        println!(
            "# total {:.4}s | legend: S=SYRK G=GEMM T=TRSM P=POTF2 c=checksum ops .=compare ==transfer",
            out.time.as_secs()
        );
        println!("{}", out.ctx.timeline.ascii_gantt(100));
        println!(
            "lane utilization: {}\n",
            out.ctx.timeline.utilization_summary()
        );
    }
    println!(
        "reading: every input is verified (recalc `c` kernels on the recalc streams)\n\
         before SYRK/GEMM/POTF2/TRSM touch it; the *updating* checksum work then rides\n\
         a GPU stream in (a) or the CPU worker lanes in (b) — the paper's two\n\
         assignment strategies, chosen per system by the Optimization-2 model."
    );
}
