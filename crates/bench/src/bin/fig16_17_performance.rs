//! Figures 16 & 17 — performance (GFLOP/s) comparison: original MAGMA,
//! CULA, Offline-ABFT, Online-ABFT, Enhanced Online-ABFT across the size
//! sweep.
//!
//! Expected shape (the paper's): MAGMA on top, the three ABFT variants just
//! below it and nearly indistinguishable, and CULA clearly last — i.e. the
//! fully protected Enhanced Online-ABFT still outperforms the vendor
//! library.

use hchol_bench::report::{save, Table};
use hchol_bench::runner::{run_variant, Variant};
use hchol_bench::{paper_sizes, BenchArgs};
use hchol_core::options::AbftOptions;
use hchol_faults::FaultPlan;
use hchol_gpusim::ExecMode;

fn main() {
    let args = BenchArgs::parse();
    for (fig, profile) in ["16", "17"].iter().zip(args.systems()) {
        let b = profile.default_block;
        let opts = AbftOptions::default();
        let header: Vec<&str> = std::iter::once("n")
            .chain(Variant::all().iter().map(|v| v.name()))
            .collect();
        let mut t = Table::new(
            &format!("Figure {fig} — performance on {} (GFLOP/s)", profile.name),
            &header,
        );
        let mut final_row: Option<Vec<f64>> = None;
        for n in paper_sizes(&profile, args.quick) {
            let mut cells = vec![n.to_string()];
            let mut raw = Vec::new();
            for v in Variant::all() {
                let r = run_variant(
                    v,
                    &profile,
                    ExecMode::TimingOnly,
                    n,
                    b,
                    &opts,
                    FaultPlan::none(),
                    None,
                );
                cells.push(format!("{:.1}", r.gflops));
                raw.push(r.gflops);
            }
            t.row(&cells);
            final_row = Some(raw);
        }
        t.print();
        if let Some(g) = final_row {
            // Sanity narration at the largest size: the paper's ranking.
            let (magma, cula, enhanced) = (g[0], g[1], g[4]);
            println!(
                "at the largest size: MAGMA {magma:.0} ≥ Enhanced {enhanced:.0} > CULA {cula:.0} GFLOP/s — the ABFT-protected routine still beats the vendor library\n"
            );
        }
        if args.json {
            let tag = profile.name.to_lowercase();
            let p = save(&format!("fig{fig}_performance_{tag}.csv"), &t.to_csv());
            let j = t.save_json(&format!("fig{fig}_performance_{tag}.json"));
            println!("series written to {} and {}\n", p.display(), j.display());
        }
    }
}
