//! Run one Enhanced Online-ABFT factorization with a mid-run storage error
//! and export the full observability run report — the end-to-end
//! demonstration the `EXPERIMENTS.md` walkthrough follows.
//!
//! Prints the human-readable summary (phase breakdown, engine busy/idle,
//! fault-tolerance counters, event log) and, with `--json`, writes the
//! complete versioned JSON document under `bench_results/`.

use hchol_bench::report;
use hchol_bench::BenchArgs;
use hchol_core::schemes::{run_scheme, SchemeKind};
use hchol_core::AbftOptions;
use hchol_faults::FaultPlan;
use hchol_gpusim::ExecMode;

fn main() {
    let args = BenchArgs::parse();
    for profile in args.systems() {
        let n = if args.quick { 2048 } else { 10240 };
        let b = profile.default_block;
        let nt = n / b;
        let out = run_scheme(
            SchemeKind::Enhanced,
            &profile,
            ExecMode::TimingOnly,
            n,
            b,
            &AbftOptions::default(),
            FaultPlan::paper_storage_error(nt, b),
            None,
        )
        .expect("scheme runs");
        let rep = out.report();
        rep.validate(1e-6)
            .expect("per-phase totals sum to the run's total virtual time");
        print!("{}", rep.render_text());
        let phase_sum: f64 = rep.phase_totals.iter().map(|p| p.secs).sum();
        println!(
            "partition check: Σ phases = {phase_sum:.6}s vs total {:.6}s ✓\n",
            rep.total_secs
        );
        if args.json {
            let p = report::save(
                &format!("run_report_{}.json", profile.name.to_lowercase()),
                &rep.to_json(),
            );
            println!("run report written to {}\n", p.display());
        }
    }
}
