//! One-command reproduction: runs every paper experiment (and the
//! extensions) back to back. `--quick` trims sweeps for a fast smoke pass.
//!
//! Each experiment is an independent binary; this driver just invokes their
//! entry logic via `cargo run`-equivalent process spawns so output ordering
//! matches the paper's section order.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig01_trace",
    "fig02_design",
    "table01_verification",
    "table03_06_overhead",
    "table07_capability",
    "fig08_09_opt1",
    "fig10_11_opt2",
    "fig12_13_opt3",
    "fig14_15_overhead",
    "fig16_17_performance",
    "ablation_block",
    "ablation_ecc",
    "ablation_variant",
    "campaign_survival",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n######## {name} ########");
        let path = bin_dir.join(name);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("spawn {name}: {e} (build with --release first)"));
        if !status.success() {
            failures.push(*name);
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
