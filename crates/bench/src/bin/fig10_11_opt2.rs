//! Figures 10 & 11 — Optimization 2: checksum-update placement.
//!
//! Sweeps the paper's sizes and prints the Enhanced scheme's relative
//! overhead before (updates inline on the compute stream) and after
//! (updates offloaded per the decision model — CPU worker lanes on Tardis,
//! a concurrent GPU stream on Bulldozer64, exactly the choices the paper
//! reports).

use hchol_bench::report::{fmt_pct, save, Table};
use hchol_bench::runner::{overhead_pct, run_variant, Variant};
use hchol_bench::{paper_sizes, BenchArgs};
use hchol_core::decision;
use hchol_core::options::{AbftOptions, ChecksumPlacement};
use hchol_core::schemes::SchemeKind;
use hchol_faults::FaultPlan;
use hchol_gpusim::ExecMode;

fn main() {
    let args = BenchArgs::parse();
    for (fig, profile) in ["10", "11"].iter().zip(args.systems()) {
        let b = profile.default_block;
        let chosen = decision::choose(ChecksumPlacement::Auto, &profile, 20480, b, 1);
        let chosen_name = match chosen {
            ChecksumPlacement::Cpu => "CPU",
            ChecksumPlacement::Gpu => "GPU stream",
            _ => "?",
        };
        let mut t = Table::new(
            &format!(
                "Figure {fig} — Opt. 2 on {} (Enhanced overhead; decision model picks {chosen_name} updating)",
                profile.name
            ),
            &["n", "before (inline)", "after (offloaded)", "gain (points)"],
        );
        for n in paper_sizes(&profile, args.quick) {
            let base = run_variant(
                Variant::Magma,
                &profile,
                ExecMode::TimingOnly,
                n,
                b,
                &AbftOptions::default(),
                FaultPlan::none(),
                None,
            )
            .seconds;
            let run = |placement: ChecksumPlacement| {
                run_variant(
                    Variant::Scheme(SchemeKind::Enhanced),
                    &profile,
                    ExecMode::TimingOnly,
                    n,
                    b,
                    &AbftOptions::default().with_placement(placement),
                    FaultPlan::none(),
                    None,
                )
                .seconds
            };
            let before = overhead_pct(run(ChecksumPlacement::Inline), base);
            let after = overhead_pct(run(chosen), base);
            t.row(&[
                n.to_string(),
                fmt_pct(before),
                fmt_pct(after),
                format!("{:.2}", before - after),
            ]);
        }
        t.print();
        if args.json {
            let tag = profile.name.to_lowercase();
            let p = save(&format!("fig{fig}_opt2_{tag}.csv"), &t.to_csv());
            let j = t.save_json(&format!("fig{fig}_opt2_{tag}.json"));
            println!("series written to {} and {}\n", p.display(), j.display());
        }
    }
}
