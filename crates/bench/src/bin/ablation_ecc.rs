//! Ablation: ECC vs ABFT division of labor.
//!
//! The paper's motivation notes that machine ECC absorbs single-bit upsets
//! but not multi-bit ones — ABFT exists for what slips through. This
//! experiment draws a population of storage upsets with a realistic bit
//! multiplicity mix, filters it through the SEC-DED model, and shows what
//! each layer (ECC alone / ABFT alone / both) leaves uncorrected in an
//! Enhanced Online-ABFT run.

use hchol_bench::report::Table;
use hchol_bench::BenchArgs;
use hchol_core::options::AbftOptions;
use hchol_core::schemes::{run_scheme, SchemeKind};
use hchol_faults::ecc::effective_flips;
use hchol_faults::{FaultKind, FaultPlan, FaultSpec, FaultTarget, InjectionPoint};
use hchol_gpusim::profile::SystemProfile;
use hchol_gpusim::ExecMode;
use hchol_matrix::generate::{rng, spd_diag_dominant};
use rand::Rng;

/// Draw `count` upsets: mostly single-bit, a tail of multi-bit bursts
/// (the mix large-scale DRAM studies report).
fn upset_population(count: usize, grid: usize, block: usize, seed: u64) -> Vec<FaultSpec> {
    let mut r = rng(seed);
    (0..count)
        .map(|_| {
            let width = match r.gen_range(0..10) {
                0..=6 => 1usize, // ~70% single-bit
                7..=8 => 2,      // ~20% double-bit
                _ => 3,          // ~10% wider burst
            };
            let bits: Vec<u32> = (0..width).map(|_| r.gen_range(20..62)).collect();
            let iter = r.gen_range(1..grid);
            let bi = r.gen_range(iter..grid);
            FaultSpec {
                point: InjectionPoint::IterStart { iter },
                target: FaultTarget {
                    bi,
                    bj: r.gen_range(0..=bi),
                    row: r.gen_range(0..block),
                    col: r.gen_range(0..block),
                },
                kind: FaultKind::Storage { bits },
            }
        })
        .collect()
}

fn main() {
    let args = BenchArgs::parse();
    let (n, b) = if args.quick {
        (128usize, 16usize)
    } else {
        (256, 16)
    };
    let grid = n / b;
    let a = spd_diag_dominant(n, 77);
    let population = upset_population(24, grid, b, 20260705);

    let mut t = Table::new(
        &format!("Ablation — ECC vs ABFT on {n}x{n} (24 storage upsets, Enhanced, K = 1)"),
        &[
            "Configuration",
            "upsets reaching memory",
            "attempts",
            "ABFT corrections",
            "residual",
        ],
    );
    // "minimal" keeps only the scheme's mandatory positive-definiteness
    // guards (SYRK/POTF2 input checks cannot be disabled — without them the
    // run fail-stops); K = huge turns off all panel verification.
    for (label, ecc_on, abft_on) in [
        ("minimal (PD guards only)", false, false),
        ("ECC + minimal", true, false),
        ("ABFT only", false, true),
        ("ECC + ABFT", true, true),
    ] {
        // ECC filters the upset population before it reaches memory.
        let surviving: Vec<FaultSpec> = population
            .iter()
            .filter_map(|f| {
                let FaultKind::Storage { bits } = &f.kind else {
                    return None;
                };
                if effective_flips(bits.len(), ecc_on) == 0 {
                    None
                } else {
                    Some(f.clone())
                }
            })
            .collect();
        let reached = surviving.len();
        let plan = FaultPlan {
            faults: surviving,
            ..FaultPlan::default()
        };
        let opts = AbftOptions {
            // "ABFT off" = never verify (K beyond the iteration count) and
            // never restart: errors sail through, exactly like an
            // unprotected MAGMA run.
            verify_interval: if abft_on { 1 } else { usize::MAX / 2 },
            max_restarts: if abft_on { 4 } else { 0 },
            ..AbftOptions::default()
        };
        let out = run_scheme(
            SchemeKind::Enhanced,
            &SystemProfile::bulldozer64(),
            ExecMode::Execute,
            n,
            b,
            &opts,
            plan,
            Some(&a),
        )
        .expect("run completes");
        let resid = out
            .factor
            .as_ref()
            .map(|l| hchol_matrix::relative_residual(&hchol_blas::potrf::reconstruct_lower(l), &a))
            .unwrap_or(f64::NAN);
        t.row(&[
            label.to_string(),
            reached.to_string(),
            out.attempts.to_string(),
            out.verify.corrected_data.to_string(),
            format!("{resid:.1e}"),
        ]);
    }
    t.print();
    if args.json {
        let p = t.save_json("ablation_ecc.json");
        println!("table written to {}", p.display());
    }
    println!(
        "reading: ECC thins the population (single-bit upsets vanish) but multi-bit\n\
         upsets still corrupt the factor (wrong residual, no recovery); only the two\n\
         full-ABFT rows end clean. Together they are cheapest: ABFT sees fewer events,\n\
         so fewer corrections and the smallest residual."
    );
}
