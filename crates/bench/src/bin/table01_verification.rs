//! Table I — blocks verified per operation: Online-ABFT vs Enhanced
//! Online-ABFT.
//!
//! Prints the paper's asymptotic table and cross-checks it against the
//! *measured* number of recalculation kernels each scheme actually issued
//! (from the runtime's work counters) on a mid-size run.

use hchol_bench::report::Table;
use hchol_bench::BenchArgs;
use hchol_core::options::AbftOptions;
use hchol_core::overhead::table1_rows;
use hchol_core::schemes::{run_clean, SchemeKind};
use hchol_gpusim::profile::SystemProfile;
use hchol_gpusim::ExecMode;

fn main() {
    let args = BenchArgs::parse();

    let mut t = Table::new(
        "Table I — verification comparison (blocks verified per iteration)",
        &["Operation", "Online-ABFT verifies", "Enhanced verifies"],
    );
    for (op, online, enhanced) in table1_rows() {
        t.row(&[op.to_string(), online.to_string(), enhanced.to_string()]);
    }
    t.print();
    if args.json {
        let p = t.save_json("table01_verification.json");
        println!("table written to {}", p.display());
    }

    // Measured cross-check: count recalculation kernels for both schemes.
    let profile = SystemProfile::tardis();
    let n = if args.quick { 4096 } else { 10240 };
    let b = profile.default_block;
    let nt = n / b;
    let opts = AbftOptions::default();
    let mut m = Table::new(
        &format!("Measured recalculation kernels (Tardis, n = {n}, B = {b}, nt = {nt})"),
        &["Scheme", "recalc kernels", "predicted order"],
    );
    for (kind, predicted) in [
        (SchemeKind::Online, format!("O(nt²) = {}", nt * nt)),
        (
            SchemeKind::Enhanced,
            format!("O(nt³/6) = {}", nt * nt * nt / 6),
        ),
    ] {
        let out = run_clean(kind, &profile, ExecMode::TimingOnly, n, b, &opts, None)
            .expect("scheme runs");
        // One recalculation kernel per verified tile: the run report's
        // `verify.tiles` counter is the measured count.
        m.row(&[
            kind.name().to_string(),
            out.ctx.obs.metrics.count("verify.tiles").to_string(),
            predicted,
        ]);
    }
    m.print();
    if args.json {
        let p = m.save_json("table01_measured.json");
        println!("table written to {}", p.display());
    }
    println!(
        "Enhanced verifies each block O(n) times on average (every read), Online O(1) (every write) — the ratio above grows with nt as the paper's Table I predicts."
    );
}
