//! Figures 12 & 13 — Optimization 3: verify every K iterations.
//!
//! Sweeps the paper's sizes and prints the Enhanced scheme's relative
//! overhead at K = 1, 3, 5 (the values the paper plots). Overhead drops
//! steeply with K because the dominant cost — recalculating the GEMM input
//! panels — is gated to every K-th iteration.

use hchol_bench::report::{fmt_pct, save, Table};
use hchol_bench::runner::{overhead_pct, run_variant, Variant};
use hchol_bench::{paper_sizes, BenchArgs};
use hchol_core::options::AbftOptions;
use hchol_core::schemes::SchemeKind;
use hchol_faults::FaultPlan;
use hchol_gpusim::ExecMode;

fn main() {
    let args = BenchArgs::parse();
    for (fig, profile) in ["12", "13"].iter().zip(args.systems()) {
        let b = profile.default_block;
        let mut t = Table::new(
            &format!(
                "Figure {fig} — Opt. 3 on {} (Enhanced overhead vs MAGMA for K = 1, 3, 5)",
                profile.name
            ),
            &["n", "K=1", "K=3", "K=5"],
        );
        for n in paper_sizes(&profile, args.quick) {
            let base = run_variant(
                Variant::Magma,
                &profile,
                ExecMode::TimingOnly,
                n,
                b,
                &AbftOptions::default(),
                FaultPlan::none(),
                None,
            )
            .seconds;
            let mut cells = vec![n.to_string()];
            for k in [1usize, 3, 5] {
                let s = run_variant(
                    Variant::Scheme(SchemeKind::Enhanced),
                    &profile,
                    ExecMode::TimingOnly,
                    n,
                    b,
                    &AbftOptions::default().with_interval(k),
                    FaultPlan::none(),
                    None,
                )
                .seconds;
                cells.push(fmt_pct(overhead_pct(s, base)));
            }
            t.row(&cells);
        }
        t.print();
        if args.json {
            let tag = profile.name.to_lowercase();
            let p = save(&format!("fig{fig}_opt3_{tag}.csv"), &t.to_csv());
            let j = t.save_json(&format!("fig{fig}_opt3_{tag}.json"));
            println!("series written to {} and {}\n", p.display(), j.display());
        }
    }
}
