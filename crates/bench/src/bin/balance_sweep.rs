//! Static vs. adaptive checksum-update placement: the feedback load
//! balancer (DESIGN.md §11) against the paper's one-shot Optimization-2
//! decision, on both paper systems and the deliberately mis-described
//! `Tardis-Skewed` (degraded PCIe link) → `BENCH_balance.json`.
//!
//! On the well-described machines the analytic model is already right, so
//! the balancer's job is to stay out of the way (`switches == 0`, times
//! within noise). On the skewed profile the model's `max` hides the mirror
//! traffic the degraded link can no longer absorb; the static run keeps
//! shipping panel mirrors over the saturated link while the balancer
//! migrates updating to the GPU and wins outright.
//!
//! Usage: `cargo run --release -p hchol-bench --bin balance_sweep [--quick]`.
//! `--quick` stops at n = 2048 (the CI configuration).

use hchol_core::options::{AbftOptions, BalanceOptions};
use hchol_core::schemes::{run_clean, SchemeKind};
use hchol_gpusim::profile::SystemProfile;
use hchol_gpusim::ExecMode;

#[derive(serde::Serialize)]
struct Entry {
    system: String,
    n: usize,
    block: usize,
    /// Placement the analytic model picked for the static run.
    static_placement: String,
    static_secs: f64,
    adaptive_secs: f64,
    /// (static − adaptive) / static, percent; positive = balancer wins.
    adaptive_gain_pct: f64,
    switches: usize,
    /// Largest verify interval the adaptive run ever installed.
    max_k: usize,
    /// Final `balance.*` gauges of the adaptive run's last window.
    gpu_util: f64,
    cpu_util: f64,
    dma_util: f64,
    queue_frac: f64,
}

#[derive(serde::Serialize)]
struct Report {
    scheme: &'static str,
    quick: bool,
    balance: BalanceOptions,
    results: Vec<Entry>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[1024, 2048]
    } else {
        &[1024, 2048, 4096]
    };
    let balance = BalanceOptions::default().with_update_interval(2);
    let mut results = Vec::new();
    for profile in [
        SystemProfile::tardis(),
        SystemProfile::bulldozer64(),
        SystemProfile::tardis_skewed(),
    ] {
        for &n in sizes {
            let b = 128usize.min(n / 4);
            let run = |opts: &AbftOptions| {
                run_clean(
                    SchemeKind::Enhanced,
                    &profile,
                    ExecMode::TimingOnly,
                    n,
                    b,
                    opts,
                    None,
                )
                .expect("Enhanced run")
            };
            let stat = run(&AbftOptions::default());
            let adap = run(&AbftOptions::default().with_balance(balance.clone()));
            let (ts, ta) = (stat.time.as_secs(), adap.time.as_secs());
            let log = adap.balance_log.as_ref().expect("adaptive run keeps a log");
            let m = &adap.ctx.obs.metrics;
            let entry = Entry {
                system: profile.name.clone(),
                n,
                block: b,
                static_placement: format!("{:?}", stat.opts.placement),
                static_secs: ts,
                adaptive_secs: ta,
                adaptive_gain_pct: (ts - ta) / ts * 100.0,
                switches: log.switches(),
                max_k: log.max_k(),
                gpu_util: m.gauge("balance.gpu_util").unwrap_or(0.0),
                cpu_util: m.gauge("balance.cpu_util").unwrap_or(0.0),
                dma_util: m.gauge("balance.dma_util").unwrap_or(0.0),
                queue_frac: m.gauge("balance.queue_frac").unwrap_or(0.0),
            };
            println!(
                "{:<14} n={:<5} b={:<4} static({:<4}) {:>8.4}s adaptive {:>8.4}s | gain {:>6.2}% switches {} max_k {}",
                entry.system,
                n,
                b,
                entry.static_placement,
                ts,
                ta,
                entry.adaptive_gain_pct,
                entry.switches,
                entry.max_k
            );
            results.push(entry);
        }
    }
    // The acceptance gate: adaptive is never worse than static beyond
    // noise, and strictly faster where the static placement is wrong.
    for e in &results {
        assert!(
            e.adaptive_gain_pct > -0.5,
            "{} n={}: adaptive lost {:.2}%",
            e.system,
            e.n,
            -e.adaptive_gain_pct
        );
        if e.system == "Tardis-Skewed" {
            assert!(
                e.switches >= 1 && e.adaptive_gain_pct > 5.0,
                "{} n={}: expected a migration and a clear win, got {} switches / {:.2}%",
                e.system,
                e.n,
                e.switches,
                e.adaptive_gain_pct
            );
        }
    }
    let report = Report {
        scheme: SchemeKind::Enhanced.name(),
        quick,
        balance,
        results,
    };
    let env = hchol_obs::envelope("bench", "balance", serde::Serialize::to_value(&report));
    let json = serde_json::to_string_pretty(&env).expect("serialize report");
    // Anchor to the workspace root: cargo runs binaries from their cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_balance.json");
    std::fs::write(path, json).expect("write BENCH_balance.json");
    println!("wrote {path}");
}
