//! Figure 1 — the MAGMA hybrid Cholesky execution trace: GPU kernels,
//! transfers, and the CPU POTF2 hiding under the GPU GEMM.
//!
//! Prints an ASCII Gantt chart of a few middle iterations and dumps the
//! full JSON trace under `bench_results/` for external plotting.

use hchol_bench::report;
use hchol_bench::BenchArgs;
use hchol_core::magma::factor_magma;
use hchol_gpusim::ExecMode;

fn main() {
    let args = BenchArgs::parse();
    for profile in args.systems() {
        let n = if args.quick { 2048 } else { 8192 };
        let b = profile.default_block;
        let rep =
            factor_magma(&profile, ExecMode::TimingOnly, n, b, None, true).expect("baseline runs");
        println!(
            "# Figure 1 — MAGMA hybrid Cholesky trace on {} (n = {n}, B = {b})",
            profile.name
        );
        println!(
            "# total {:.4}s | legend: S=SYRK G=GEMM T=TRSM P=POTF2(CPU) ==transfer",
            rep.time.as_secs()
        );
        println!("{}", rep.ctx.timeline.ascii_gantt(100));
        println!(
            "lane utilization: {}",
            rep.ctx.timeline.utilization_summary()
        );
        let busy_gpu = rep.ctx.timeline.lane_busy(hchol_gpusim::Lane::GpuStream(0));
        let busy_cpu = rep.ctx.timeline.lane_busy(hchol_gpusim::Lane::HostMain);
        println!(
            "gpu busy {:.4}s ({:.1}%), cpu busy {:.4}s ({:.1}%) — the CPU is idle most of the time, which Optimization 2 exploits\n",
            busy_gpu.as_secs(),
            100.0 * busy_gpu.as_secs() / rep.time.as_secs(),
            busy_cpu.as_secs(),
            100.0 * busy_cpu.as_secs() / rep.time.as_secs(),
        );
        if args.json {
            let tag = profile.name.to_lowercase();
            let trace =
                serde_json::value_from_str(&rep.ctx.timeline.to_json()).expect("trace serializes");
            let path = report::save_envelope(
                "trace",
                &format!("MAGMA hybrid trace on {}", profile.name),
                &format!("fig01_trace_{tag}.json"),
                trace,
            );
            println!("trace written to {}", path.display());
            let run = report::save(
                &format!("fig01_run_report_{tag}.json"),
                &rep.report("MAGMA hybrid").to_json(),
            );
            println!("run report written to {}", run.display());
        }
    }
}
