//! Extension experiment: survival curves under Poisson fault storms.
//!
//! The paper's Optimization 3 trades overhead against "error correction
//! capability" but only reports the overhead side. This experiment fills in
//! the capability side: for each (storage-error rate λ, verification
//! interval K) cell it runs a multi-seed campaign of Enhanced Online-ABFT
//! in Execute mode (real corruption, real correction) and reports survival
//! rate, restart rate, and mean cost — the full trade-off surface behind
//! "properly adjusting the number K".

use hchol_bench::report::{save, Table};
use hchol_bench::BenchArgs;
use hchol_blas::potrf::reconstruct_lower;
use hchol_core::options::AbftOptions;
use hchol_core::schemes::{run_scheme, SchemeKind};
use hchol_faults::poisson::storage_plan;
use hchol_faults::{run_campaign, TrialOutcome};
use hchol_gpusim::profile::SystemProfile;
use hchol_gpusim::ExecMode;
use hchol_matrix::generate::spd_diag_dominant;
use hchol_matrix::relative_residual;

fn main() {
    let args = BenchArgs::parse();
    let (n, b) = (192usize, 16usize);
    let nt = n / b;
    let trials = if args.quick { 5 } else { 20 };
    let a = spd_diag_dominant(n, 1);
    let system = SystemProfile::bulldozer64();

    let mut t = Table::new(
        &format!(
            "Survival under Poisson storage-error storms (Enhanced, n = {n}, B = {b}, {trials} trials/cell)"
        ),
        &[
            "rate/iter",
            "K",
            "survival",
            "restart rate",
            "mean corrections",
            "mean time",
        ],
    );
    for &rate in &[0.1f64, 0.5, 2.0] {
        for &k in &[1usize, 3, 5] {
            let opts = AbftOptions {
                max_restarts: 6,
                ..AbftOptions::default().with_interval(k)
            };
            let stats = run_campaign(trials, 4242, |seed| {
                let plan = storage_plan(nt, b, rate, seed);
                let out = run_scheme(
                    SchemeKind::Enhanced,
                    &system,
                    ExecMode::Execute,
                    n,
                    b,
                    &opts,
                    plan,
                    Some(&a),
                )
                .expect("run completes");
                let resid = out
                    .factor
                    .as_ref()
                    .map(|l| relative_residual(&reconstruct_lower(l), &a))
                    .unwrap_or(f64::INFINITY);
                TrialOutcome {
                    correct: !out.failed && resid < 1e-9,
                    attempts: out.attempts,
                    corrected: out.verify.corrected_data,
                    seconds: out.time.as_secs(),
                }
            });
            t.row(&[
                format!("{rate:.1}"),
                k.to_string(),
                format!("{:.0}%", 100.0 * stats.survival_rate()),
                format!(
                    "{:.0}%",
                    100.0 * stats.restarted as f64 / stats.trials as f64
                ),
                format!("{:.1}", stats.total_corrected as f64 / stats.trials as f64),
                format!("{:.3}ms", stats.mean_seconds * 1e3),
            ]);
        }
    }
    t.print();
    println!(
        "reading: the crossover the paper's Optimization 3 is about, measured. At low\n\
         rates, larger K is cheapest (less verification, rare restarts). As the rate\n\
         grows, K > 1 restarts on almost every run and its advantage evaporates, while\n\
         K = 1 absorbs nearly everything in place (its rare restarts are two errors\n\
         landing in one block column — beyond two-checksum correction capability)."
    );
    if args.json {
        let p = save("campaign_survival.csv", &t.to_csv());
        let j = t.save_json("campaign_survival.json");
        println!("series written to {} and {}", p.display(), j.display());
    }
}
