//! Regenerate the golden-equivalence fixtures under `tests/fixtures/golden/`.
//!
//! Each fixture pins the exact observable behavior of one driver
//! configuration: the serialized `RunReport` bytes and an FNV-1a hash of
//! the factor bits (Execute mode). The integration test
//! `tests/golden_equivalence.rs` replays the same configurations and
//! requires byte-identical reports and bit-identical factors.
//!
//! Run from the repository root (`cargo run --release -p hchol-bench --bin
//! golden_capture`) only when a schedule change is *intentional*; the diff
//! of the regenerated fixtures then documents exactly what moved.

use hchol_core::cula::factor_cula;
use hchol_core::magma::factor_magma;
use hchol_core::options::{AbftOptions, ChecksumPlacement};
use hchol_core::schemes::{run_scheme, SchemeKind};
use hchol_faults::FaultPlan;
use hchol_gpusim::profile::SystemProfile;
use hchol_gpusim::ExecMode;
use hchol_matrix::generate::spd_diag_dominant;
use hchol_matrix::Matrix;
use std::fs;
use std::path::PathBuf;

fn hash_factor(m: &Matrix) -> u64 {
    let (rows, cols) = m.shape();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..rows {
        for j in 0..cols {
            for byte in m.get(i, j).to_bits().to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

fn scheme_slug(kind: SchemeKind) -> &'static str {
    match kind {
        SchemeKind::Offline => "offline",
        SchemeKind::Online => "online",
        SchemeKind::Enhanced => "enhanced",
    }
}

/// One captured case: a stable file slug plus the closure that produces
/// (report JSON, factor hash).
struct Case {
    slug: String,
    report_json: String,
    factor_hash: u64,
}

fn scheme_case(
    kind: SchemeKind,
    n: usize,
    b: usize,
    opts: &AbftOptions,
    faulted: bool,
    tag: &str,
) -> Case {
    let a = spd_diag_dominant(n, 7);
    let nt = n / b;
    let plan = if faulted {
        FaultPlan::paper_computing_error(nt, b).merged(FaultPlan::paper_storage_error(nt, b))
    } else {
        FaultPlan::none()
    };
    let out = run_scheme(
        kind,
        &SystemProfile::test_profile(),
        ExecMode::Execute,
        n,
        b,
        opts,
        plan,
        Some(&a),
    )
    .expect("scheme runs");
    Case {
        slug: format!("{}_{n}_{tag}", scheme_slug(kind)),
        report_json: serde_json::to_string(&out.report()).expect("report serializes"),
        factor_hash: hash_factor(&out.factor.expect("Execute mode yields a factor")),
    }
}

fn baseline_case(name: &str, n: usize, b: usize) -> Case {
    let a = spd_diag_dominant(n, 7);
    let p = SystemProfile::test_profile();
    let rep = match name {
        "magma" => factor_magma(&p, ExecMode::Execute, n, b, Some(&a), false).expect("magma runs"),
        "cula" => factor_cula(&p, ExecMode::Execute, n, b, Some(&a)).expect("cula runs"),
        _ => unreachable!(),
    };
    let display = if name == "magma" {
        "MAGMA hybrid"
    } else {
        "CULA dpotrf"
    };
    Case {
        slug: format!("{name}_{n}"),
        report_json: serde_json::to_string(&rep.report(display)).expect("report serializes"),
        factor_hash: hash_factor(&rep.factor.expect("Execute mode yields a factor")),
    }
}

fn main() {
    let dir = PathBuf::from("tests/fixtures/golden");
    fs::create_dir_all(&dir).expect("create fixture dir");
    let b = 32usize;
    let mut cases: Vec<Case> = Vec::new();

    for kind in SchemeKind::all() {
        for n in [64usize, 192, 256] {
            for faulted in [false, true] {
                let tag = if faulted { "faulted" } else { "clean" };
                cases.push(scheme_case(
                    kind,
                    n,
                    b,
                    &AbftOptions::default(),
                    faulted,
                    tag,
                ));
            }
        }
    }
    // Option-space corners: CPU placement (mirror/flush path), the
    // unoptimized baseline (inline updates, serial recalc), K-gated verify.
    cases.push(scheme_case(
        SchemeKind::Enhanced,
        192,
        b,
        &AbftOptions::default().with_placement(ChecksumPlacement::Cpu),
        false,
        "cpu",
    ));
    cases.push(scheme_case(
        SchemeKind::Enhanced,
        192,
        b,
        &AbftOptions::unoptimized(),
        false,
        "unopt",
    ));
    cases.push(scheme_case(
        SchemeKind::Enhanced,
        256,
        b,
        &AbftOptions::default().with_interval(4),
        false,
        "k4",
    ));
    cases.push(baseline_case("magma", 192, b));
    cases.push(baseline_case("cula", 192, b));

    let mut manifest = String::from("{\n");
    for (i, c) in cases.iter().enumerate() {
        let path = dir.join(format!("{}.report.json", c.slug));
        fs::write(&path, &c.report_json).expect("write fixture");
        println!("wrote {}", path.display());
        manifest.push_str(&format!(
            "  \"{}\": \"{:016x}\"{}\n",
            c.slug,
            c.factor_hash,
            if i + 1 == cases.len() { "" } else { "," }
        ));
    }
    manifest.push_str("}\n");
    fs::write(dir.join("factors.json"), manifest).expect("write manifest");
    println!("wrote {} fixtures", cases.len());
}
