//! Unified runner over every factorization variant the paper compares.

use hchol_core::cula::factor_cula;
use hchol_core::magma::factor_magma;
use hchol_core::options::AbftOptions;
use hchol_core::plan::exec::{run_batch, BatchRequest};
use hchol_core::schemes::{run_scheme, SchemeKind};
use hchol_faults::FaultPlan;
use hchol_gpusim::profile::SystemProfile;
use hchol_gpusim::ExecMode;
use hchol_matrix::Matrix;

/// A factorization variant under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Plain MAGMA-style hybrid Cholesky (no fault tolerance).
    Magma,
    /// Simulated CULA R18 baseline.
    Cula,
    /// One of the three ABFT schemes.
    Scheme(SchemeKind),
}

impl Variant {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Magma => "MAGMA",
            Variant::Cula => "CULA",
            Variant::Scheme(k) => k.name(),
        }
    }

    /// Every variant, in Figure-16/17 legend order.
    pub fn all() -> [Variant; 5] {
        [
            Variant::Magma,
            Variant::Cula,
            Variant::Scheme(SchemeKind::Offline),
            Variant::Scheme(SchemeKind::Online),
            Variant::Scheme(SchemeKind::Enhanced),
        ]
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The variant.
    pub variant: &'static str,
    /// Matrix size.
    pub n: usize,
    /// Virtual seconds.
    pub seconds: f64,
    /// `n³/3 / seconds / 1e9`.
    pub gflops: f64,
    /// Attempts taken (1 unless recovery restarted the run).
    pub attempts: usize,
    /// Corrections performed.
    pub corrected: usize,
}

/// Run one variant once. `input` is required in Execute mode.
#[allow(clippy::too_many_arguments)] // mirrors the driver signature
pub fn run_variant(
    variant: Variant,
    profile: &SystemProfile,
    mode: ExecMode,
    n: usize,
    b: usize,
    opts: &AbftOptions,
    plan: FaultPlan,
    input: Option<&Matrix>,
) -> RunResult {
    let (seconds, attempts, corrected) = match variant {
        Variant::Magma => {
            let r = factor_magma(profile, mode, n, b, input, false).expect("magma baseline");
            (r.time.as_secs(), 1, 0)
        }
        Variant::Cula => {
            let r = factor_cula(profile, mode, n, b, input).expect("cula baseline");
            (r.time.as_secs(), 1, 0)
        }
        Variant::Scheme(kind) => {
            // Bench measures virtual time only; the schedule trace is for
            // hchol-analyze and just costs memory on paper-scale sweeps.
            let opts = AbftOptions {
                trace_schedule: false,
                ..opts.clone()
            };
            let r = run_scheme(kind, profile, mode, n, b, &opts, plan, input).expect("abft scheme");
            (r.time.as_secs(), r.attempts, r.verify.corrected_data)
        }
    };
    RunResult {
        variant: variant.name(),
        n,
        seconds,
        gflops: (n as f64).powi(3) / 3.0 / seconds / 1e9,
        attempts,
        corrected,
    }
}

/// Relative overhead of `t` against baseline `base`, in percent.
pub fn overhead_pct(t: f64, base: f64) -> f64 {
    (t / base - 1.0) * 100.0
}

/// One batched-run measurement: `batch` identical factorizations
/// interleaved through one simulator context versus the same runs back to
/// back (see [`hchol_core::plan::exec::run_batch`]).
#[derive(Debug, Clone, serde::Serialize)]
pub struct BatchResult {
    /// Scheme under measurement.
    pub scheme: &'static str,
    /// Matrix size of every member run.
    pub n: usize,
    /// Block size.
    pub b: usize,
    /// Number of concurrent factorizations.
    pub batch: usize,
    /// Virtual seconds for the runs issued sequentially.
    pub sequential_secs: f64,
    /// Virtual makespan of the batched execution.
    pub batched_secs: f64,
    /// `sequential_secs / batched_secs`.
    pub speedup: f64,
}

/// Measure `batch` concurrent `kind` factorizations of size `n` against
/// the same runs back to back (both TimingOnly, traces off).
pub fn run_batched(
    profile: &SystemProfile,
    kind: SchemeKind,
    n: usize,
    b: usize,
    opts: &AbftOptions,
    batch: usize,
) -> BatchResult {
    let opts = AbftOptions {
        trace_schedule: false,
        ..opts.clone()
    };
    let sequential: f64 = (0..batch)
        .map(|_| {
            run_scheme(
                kind,
                profile,
                ExecMode::TimingOnly,
                n,
                b,
                &opts,
                FaultPlan::none(),
                None,
            )
            .expect("sequential run")
            .time
            .as_secs()
        })
        .sum();
    let reqs: Vec<BatchRequest> = (0..batch)
        .map(|_| BatchRequest {
            kind,
            n,
            b,
            opts: opts.clone(),
        })
        .collect();
    let batched = run_batch(profile, &reqs)
        .expect("batched run")
        .time
        .as_secs();
    BatchResult {
        scheme: kind.name(),
        n,
        b,
        batch,
        sequential_secs: sequential,
        batched_secs: batched,
        speedup: sequential / batched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_run_in_timing_mode() {
        let p = SystemProfile::test_profile();
        let opts = AbftOptions::default();
        for v in Variant::all() {
            let r = run_variant(
                v,
                &p,
                ExecMode::TimingOnly,
                64,
                8,
                &opts,
                FaultPlan::none(),
                None,
            );
            assert!(r.seconds > 0.0, "{} produced zero time", r.variant);
            assert!(r.gflops > 0.0);
            assert_eq!(r.attempts, 1);
        }
    }

    #[test]
    fn batched_mode_reports_a_speedup() {
        let r = run_batched(
            &SystemProfile::test_profile(),
            SchemeKind::Enhanced,
            256,
            32,
            &AbftOptions::default(),
            4,
        );
        assert_eq!(r.batch, 4);
        assert!(
            r.batched_secs < r.sequential_secs,
            "batched {} vs sequential {}",
            r.batched_secs,
            r.sequential_secs
        );
        assert!(r.speedup > 1.0);
    }

    #[test]
    fn overhead_pct_basics() {
        assert!((overhead_pct(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert_eq!(overhead_pct(1.0, 1.0), 0.0);
    }

    #[test]
    fn variant_names_match_paper() {
        let names: Vec<_> = Variant::all().iter().map(|v| v.name()).collect();
        assert_eq!(
            names,
            vec![
                "MAGMA",
                "CULA",
                "Offline-ABFT",
                "Online-ABFT",
                "Enhanced Online-ABFT"
            ]
        );
    }
}
