//! Plain-text tables, CSV series, and JSON dumps for the experiment
//! binaries. Everything prints to stdout; `--json` additionally writes a
//! machine-readable file under `bench_results/`.
//!
//! Every JSON artifact goes through [`save_envelope`], which wraps the body
//! in the workspace's versioned envelope (`hchol_obs::envelope`) so
//! downstream tooling can dispatch on `schema_version` and `kind` instead
//! of sniffing shapes.

use hchol_obs::envelope;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A rendered table: header row + data rows, auto-aligned.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a caption and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "| {:<width$} ", c, width = w);
            }
            s.push('|');
            s
        };
        let header = line(&self.header, &widths);
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Render rows as CSV (header first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Structured JSON body of the table: `{title, header, rows}` with all
    /// cells as strings (exactly what was rendered).
    pub fn to_value(&self) -> serde::Value {
        let strs = |v: &[String]| {
            serde::Value::Array(v.iter().map(|s| serde::Value::Str(s.clone())).collect())
        };
        serde::Value::Object(vec![
            ("title".to_string(), serde::Value::Str(self.title.clone())),
            ("header".to_string(), strs(&self.header)),
            (
                "rows".to_string(),
                serde::Value::Array(self.rows.iter().map(|r| strs(r)).collect()),
            ),
        ])
    }

    /// Write the table as a versioned-envelope JSON artifact to
    /// `bench_results/<name>`; returns the path written.
    pub fn save_json(&self, name: &str) -> PathBuf {
        save_envelope("table", &self.title, name, self.to_value())
    }
}

/// Format seconds like the paper's tables (4 significant decimals).
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.4}s")
}

/// Format a percentage.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:.2}%")
}

/// Write `content` to `bench_results/<name>`, creating the directory.
/// Returns the path written.
pub fn save(name: &str, content: &str) -> PathBuf {
    let dir = PathBuf::from("bench_results");
    fs::create_dir_all(&dir).expect("create bench_results/");
    let path = dir.join(name);
    fs::write(&path, content).expect("write result file");
    path
}

/// Wrap `body` in the versioned artifact envelope
/// (`{schema_version, kind, name, body}`) and write it pretty-printed to
/// `bench_results/<file>`; returns the path written.
pub fn save_envelope(kind: &str, name: &str, file: &str, body: serde::Value) -> PathBuf {
    let env = envelope(kind, name, body);
    save(
        file,
        &serde_json::to_string_pretty(&env).expect("artifact serializes"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("| long-name "));
        assert!(r.contains("| a         "));
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", &["n", "secs"]);
        t.row(&["5120".into(), "1.5".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("n,secs\n"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(10.65721), "10.6572s");
        assert_eq!(fmt_pct(6.377), "6.38%");
    }

    #[test]
    fn table_value_is_enveloped_json() {
        let mut t = Table::new("demo", &["n", "secs"]);
        t.row(&["5120".into(), "1.5".into()]);
        let env = envelope("table", "demo", t.to_value());
        let json = serde_json::to_string_pretty(&env).unwrap();
        assert!(json.contains("\"schema_version\""));
        assert!(json.contains("\"kind\": \"table\""));
        let back = serde_json::value_from_str(&json).unwrap();
        let obj = back.as_object().unwrap();
        assert!(obj.iter().any(|(k, _)| k == "body"));
    }
}
