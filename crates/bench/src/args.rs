//! Minimal command-line handling shared by all experiment binaries
//! (hand-rolled: the experiments need exactly three flags).

use hchol_gpusim::profile::SystemProfile;

/// Flags accepted by every experiment binary:
/// `--system tardis|bulldozer64`, `--quick` (coarser sweep), `--json`.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Selected system profile (default: both, where the experiment
    /// supports it; otherwise Tardis).
    pub system: Option<String>,
    /// Run a reduced sweep for smoke-testing.
    pub quick: bool,
    /// Emit machine-readable JSON alongside the human table.
    pub json: bool,
}

impl BenchArgs {
    /// Parse from `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // not a collection conversion
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = BenchArgs {
            system: None,
            quick: false,
            json: false,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--system" => {
                    out.system = Some(it.next().unwrap_or_else(|| usage("--system needs a value")));
                }
                "--quick" => out.quick = true,
                "--json" => out.json = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        out
    }

    /// The systems this invocation targets (both when unspecified).
    pub fn systems(&self) -> Vec<SystemProfile> {
        match self.system.as_deref() {
            Some(name) => vec![crate::sweep::system_by_name(name)
                .unwrap_or_else(|| usage(&format!("unknown system {name}")))],
            None => vec![SystemProfile::tardis(), SystemProfile::bulldozer64()],
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <experiment> [--system tardis|bulldozer64] [--quick] [--json]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> BenchArgs {
        BenchArgs::from_iter(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert!(a.system.is_none());
        assert!(!a.quick && !a.json);
        assert_eq!(a.systems().len(), 2);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--system", "tardis", "--quick", "--json"]);
        assert_eq!(a.system.as_deref(), Some("tardis"));
        assert!(a.quick && a.json);
        let sys = a.systems();
        assert_eq!(sys.len(), 1);
        assert_eq!(sys[0].name, "Tardis");
    }
}
