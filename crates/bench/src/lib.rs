//! # hchol-bench
//!
//! The experiment harness: everything needed to regenerate every table and
//! figure of the paper's evaluation section (Tables I–VIII, Figures 1 and
//! 8–17). Each experiment is a binary under `src/bin/`; shared machinery —
//! variant runner, size sweeps, plain-text/CSV reporting — lives here.
//!
//! All experiments run on the **virtual clock** of `hchol-gpusim` in
//! `TimingOnly` mode at the paper's full matrix sizes (up to 30720²), so a
//! full reproduction takes seconds of wall time on any machine. Numerical
//! behaviour (real fault injection and correction) is covered by the
//! Execute-mode test suites; `table07`/`table08` additionally run a scaled
//! Execute-mode replica to show real corrections happening.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod report;
pub mod runner;
pub mod sweep;

pub use args::BenchArgs;
pub use runner::{run_variant, RunResult, Variant};
pub use sweep::{paper_sizes, system_by_name};
