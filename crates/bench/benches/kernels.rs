//! Criterion microbenchmarks of the from-scratch BLAS kernels — the
//! arithmetic substrate every simulated kernel executes. (Wall-clock here;
//! the paper experiments use the virtual clock and live in `src/bin/`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hchol_blas::{gemm, potf2, syrk, trsm};
use hchol_matrix::generate::{spd_diag_dominant, uniform};
use hchol_matrix::{Diag, Matrix, Side, Trans, Uplo};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let a = uniform(n, n, -1.0, 1.0, 1);
        let b = uniform(n, n, -1.0, 1.0, 2);
        g.bench_with_input(BenchmarkId::new("NN", n), &n, |bench, _| {
            let mut cmat = Matrix::zeros(n, n);
            bench.iter(|| {
                gemm(
                    Trans::No,
                    Trans::No,
                    1.0,
                    black_box(&a),
                    black_box(&b),
                    0.0,
                    &mut cmat,
                );
            });
        });
        g.bench_with_input(BenchmarkId::new("NT", n), &n, |bench, _| {
            let mut cmat = Matrix::zeros(n, n);
            bench.iter(|| {
                gemm(
                    Trans::No,
                    Trans::Yes,
                    -1.0,
                    black_box(&a),
                    black_box(&b),
                    1.0,
                    &mut cmat,
                );
            });
        });
    }
    g.finish();
}

fn bench_syrk_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("syrk_trsm");
    g.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let a = uniform(n, n, -1.0, 1.0, 3);
        let mut l = spd_diag_dominant(n, 4);
        potf2(&mut l, 0).unwrap();
        g.bench_with_input(BenchmarkId::new("syrk_lower", n), &n, |bench, _| {
            let mut cmat = Matrix::zeros(n, n);
            bench.iter(|| {
                syrk(Uplo::Lower, Trans::No, -1.0, black_box(&a), 1.0, &mut cmat);
            });
        });
        g.bench_with_input(BenchmarkId::new("trsm_rlt", n), &n, |bench, _| {
            bench.iter(|| {
                let mut rhs = a.clone();
                trsm(
                    Side::Right,
                    Uplo::Lower,
                    Trans::Yes,
                    Diag::NonUnit,
                    1.0,
                    black_box(&l),
                    &mut rhs,
                );
                black_box(rhs);
            });
        });
    }
    g.finish();
}

fn bench_potf2(c: &mut Criterion) {
    let mut g = c.benchmark_group("potf2");
    g.sample_size(20);
    for &n in &[32usize, 64, 128, 256] {
        let a = spd_diag_dominant(n, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                potf2(&mut w, 0).unwrap();
                black_box(w);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_syrk_trsm, bench_potf2);
criterion_main!(benches);
