//! Criterion microbenchmarks of the from-scratch BLAS kernels — the
//! arithmetic substrate every simulated kernel executes. (Wall-clock here;
//! the paper experiments use the virtual clock and live in `src/bin/`.)
//!
//! Besides the small-size criterion groups, the main sweep times the blocked
//! level-3 engine against the naive seed kernels at n ∈ {256, 512, 1024,
//! 2048}, then sweeps the threaded engine with and without the fused
//! checksum epilogue at n ∈ {2048, 4096} × 1/2/4 threads, and writes the
//! GFLOP/s of every kernel to `BENCH_kernels.json` (machine-readable;
//! consumed by CI and EXPERIMENTS.md). Pass `--quick` to stop the sweeps at
//! n = 1024 and shorten per-point timing budgets.

use criterion::{criterion_group, BenchmarkId, Criterion};
use hchol_blas::flops;
use hchol_blas::par::{par_gemm, par_gemm_fused_with_threads, par_gemm_with_threads};
use hchol_blas::{gemm, naive_gemm, naive_syrk, potf2, syrk, trsm};
use hchol_matrix::generate::{spd_diag_dominant, uniform};
use hchol_matrix::{Diag, Matrix, Side, Trans, Uplo};
use std::hint::black_box;
use std::time::Instant; // lint:allow(wall-clock) — microbenchmark, not a model path

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let a = uniform(n, n, -1.0, 1.0, 1);
        let b = uniform(n, n, -1.0, 1.0, 2);
        g.bench_with_input(BenchmarkId::new("NN", n), &n, |bench, _| {
            let mut cmat = Matrix::zeros(n, n);
            bench.iter(|| {
                gemm(
                    Trans::No,
                    Trans::No,
                    1.0,
                    black_box(&a),
                    black_box(&b),
                    0.0,
                    &mut cmat,
                );
            });
        });
        g.bench_with_input(BenchmarkId::new("NT", n), &n, |bench, _| {
            let mut cmat = Matrix::zeros(n, n);
            bench.iter(|| {
                gemm(
                    Trans::No,
                    Trans::Yes,
                    -1.0,
                    black_box(&a),
                    black_box(&b),
                    1.0,
                    &mut cmat,
                );
            });
        });
    }
    g.finish();
}

fn bench_syrk_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("syrk_trsm");
    g.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let a = uniform(n, n, -1.0, 1.0, 3);
        let mut l = spd_diag_dominant(n, 4);
        potf2(&mut l, 0).unwrap();
        g.bench_with_input(BenchmarkId::new("syrk_lower", n), &n, |bench, _| {
            let mut cmat = Matrix::zeros(n, n);
            bench.iter(|| {
                syrk(Uplo::Lower, Trans::No, -1.0, black_box(&a), 1.0, &mut cmat);
            });
        });
        g.bench_with_input(BenchmarkId::new("trsm_rlt", n), &n, |bench, _| {
            bench.iter(|| {
                let mut rhs = a.clone();
                trsm(
                    Side::Right,
                    Uplo::Lower,
                    Trans::Yes,
                    Diag::NonUnit,
                    1.0,
                    black_box(&l),
                    &mut rhs,
                );
                black_box(rhs);
            });
        });
    }
    g.finish();
}

fn bench_potf2(c: &mut Criterion) {
    let mut g = c.benchmark_group("potf2");
    g.sample_size(20);
    for &n in &[32usize, 64, 128, 256] {
        let a = spd_diag_dominant(n, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                potf2(&mut w, 0).unwrap();
                black_box(w);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_syrk_trsm, bench_potf2);

// ---------------------------------------------------------------------------
// Blocked-vs-naive sweep → BENCH_kernels.json
// ---------------------------------------------------------------------------

#[derive(serde::Serialize)]
struct Entry {
    kernel: String,
    n: usize,
    seconds: f64,
    gflops: f64,
}

#[derive(serde::Serialize)]
struct FusedEntry {
    n: usize,
    threads: usize,
    unfused_gflops: f64,
    fused_gflops: f64,
    /// Throughput the fused epilogue costs, percent of the unfused rate.
    epilogue_cost_pct: f64,
}

#[derive(serde::Serialize)]
struct Report {
    /// Host threads the parallel kernels could use (1 ⇒ par == sequential).
    threads: usize,
    quick: bool,
    results: Vec<Entry>,
    /// Fused vs. unfused epilogue throughput across sizes and team sizes.
    fused: Vec<FusedEntry>,
    /// gemm_blocked GFLOP/s ÷ gemm_naive GFLOP/s at n = 1024
    /// (the ≥5× single-thread acceptance figure).
    speedup_gemm_n1024: f64,
}

/// Mean seconds per call: one warmup, then iterate until the budget (or an
/// iteration cap for the slow naive points) is spent.
fn time_call<F: FnMut()>(mut f: F, budget: f64) -> f64 {
    f();
    let start = Instant::now(); // lint:allow(wall-clock) — real kernel timing

    let mut iters = 0u32;
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= budget || iters >= 50 {
            return elapsed / f64::from(iters);
        }
    }
}

fn sweep(quick: bool) -> Report {
    let sizes: &[usize] = if quick {
        &[256, 512, 1024]
    } else {
        &[256, 512, 1024, 2048]
    };
    let budget = if quick { 0.1 } else { 0.3 };
    let mut results = Vec::new();
    let mut push = |kernel: &str, n: usize, secs: f64, fl: u64| {
        let gflops = fl as f64 / secs / 1e9;
        println!("  {kernel:<14} n={n:<5} {secs:>9.4} s   {gflops:>7.2} GFLOP/s");
        results.push(Entry {
            kernel: kernel.to_string(),
            n,
            seconds: secs,
            gflops,
        });
    };

    for &n in sizes {
        let a = uniform(n, n, -1.0, 1.0, 11);
        let b = uniform(n, n, -1.0, 1.0, 12);
        let mut c = Matrix::zeros(n, n);
        let gemm_fl = flops::gemm(n, n, n);

        let s = time_call(
            || naive_gemm(Trans::No, Trans::Yes, -1.0, &a, &b, 1.0, &mut c),
            budget,
        );
        push("gemm_naive", n, s, gemm_fl);
        let s = time_call(
            || gemm(Trans::No, Trans::Yes, -1.0, &a, &b, 1.0, &mut c),
            budget,
        );
        push("gemm_blocked", n, s, gemm_fl);
        let s = time_call(
            || par_gemm(Trans::No, Trans::Yes, -1.0, &a, &b, 1.0, &mut c),
            budget,
        );
        push("gemm_par", n, s, gemm_fl);

        let syrk_fl = flops::syrk(n, n);
        let s = time_call(
            || naive_syrk(Uplo::Lower, Trans::No, -1.0, &a, 1.0, &mut c),
            budget,
        );
        push("syrk_naive", n, s, syrk_fl);
        let s = time_call(
            || syrk(Uplo::Lower, Trans::No, -1.0, &a, 1.0, &mut c),
            budget,
        );
        push("syrk_blocked", n, s, syrk_fl);

        let mut l = spd_diag_dominant(n, 13);
        potf2(&mut l, 0).unwrap();
        let trsm_fl = flops::trsm(n, n);
        let mut rhs = uniform(n, n, -1.0, 1.0, 14);
        let s = time_call(
            || {
                trsm(
                    Side::Right,
                    Uplo::Lower,
                    Trans::Yes,
                    Diag::NonUnit,
                    1.0,
                    &l,
                    &mut rhs,
                );
                black_box(&mut rhs);
            },
            budget,
        );
        push("trsm_blocked", n, s, trsm_fl);
    }

    let gf = |kernel: &str| {
        results
            .iter()
            .find(|e| e.kernel == kernel && e.n == 1024)
            .map_or(f64::NAN, |e| e.gflops)
    };
    let speedup = gf("gemm_blocked") / gf("gemm_naive");
    Report {
        threads: std::thread::available_parallelism().map_or(1, |t| t.get()),
        quick,
        results,
        fused: fused_sweep(quick, budget),
        speedup_gemm_n1024: speedup,
    }
}

/// Fused vs. unfused epilogue throughput of the threaded level-3 engine,
/// past the single-thread ceiling: n ∈ {2048, 4096} × 1/2/4 threads (quick:
/// n ∈ {512, 1024} × 1/2). The fused variant deposits both column checksums
/// of `C` in the micro-kernel epilogue; its GFLOP/s are computed on the
/// *product* flops only, so `epilogue_cost_pct` is the true throughput
/// price of the in-kernel deposits.
fn fused_sweep(quick: bool, budget: f64) -> Vec<FusedEntry> {
    let (sizes, teams): (&[usize], &[usize]) = if quick {
        (&[512, 1024], &[1, 2])
    } else {
        (&[2048, 4096], &[1, 2, 4])
    };
    // Best-of-N rather than mean-of-budget: at these sizes one call can
    // outlast the whole budget, and a single timing on a shared host is
    // noise-dominated. The minimum is the standard robust estimator here.
    let reps = if quick { 2 } else { 3 };
    let time_best = |f: &mut dyn FnMut(), budget: f64| {
        (0..reps)
            .map(|_| time_call(&mut *f, budget))
            .fold(f64::INFINITY, f64::min)
    };
    let mut out = Vec::new();
    for &n in sizes {
        let a = uniform(n, n, -1.0, 1.0, 21);
        let b = uniform(n, n, -1.0, 1.0, 22);
        let mut c = Matrix::zeros(n, n);
        let mut chk = Matrix::zeros(2, n);
        let fl = flops::gemm(n, n, n) as f64;
        for &t in teams {
            let s = time_best(
                &mut || par_gemm_with_threads(Trans::No, Trans::Yes, -1.0, &a, &b, 1.0, &mut c, t),
                budget,
            );
            let unfused_gflops = fl / s / 1e9;
            let s = time_best(
                &mut || {
                    par_gemm_fused_with_threads(
                        Trans::No,
                        Trans::Yes,
                        -1.0,
                        &a,
                        &b,
                        1.0,
                        &mut c,
                        &mut chk,
                        t,
                    )
                },
                budget,
            );
            let fused_gflops = fl / s / 1e9;
            let cost = (unfused_gflops - fused_gflops) / unfused_gflops * 100.0;
            println!(
                "  gemm n={n:<5} threads={t}: unfused {unfused_gflops:>7.2} GF/s, \
                 fused {fused_gflops:>7.2} GF/s (epilogue cost {cost:>5.2}%)"
            );
            out.push(FusedEntry {
                n,
                threads: t,
                unfused_gflops,
                fused_gflops,
                epilogue_cost_pct: cost,
            });
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Under `cargo test --benches` only smoke-run the criterion groups.
    if args.iter().any(|a| a == "--test") {
        benches();
        return;
    }
    benches();

    let quick = args.iter().any(|a| a == "--quick");
    println!(
        "\nblocked-vs-naive sweep ({}):",
        if quick { "quick" } else { "full" }
    );
    let report = sweep(quick);
    println!(
        "\ngemm blocked/naive speedup at n=1024: {:.2}x",
        report.speedup_gemm_n1024
    );
    let env = hchol_obs::envelope("bench", "kernels", serde::Serialize::to_value(&report));
    let json = serde_json::to_string_pretty(&env).expect("serialize report");
    // Anchor to the workspace root: cargo runs benches from the package dir.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}
