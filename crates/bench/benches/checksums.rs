//! Criterion microbenchmarks of the ABFT arithmetic: checksum encoding,
//! the four update rules, and verification with correction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hchol_core::checksum::{encode, encode_into};
use hchol_core::chkops::{update_potf2, update_product, update_trsm};
use hchol_core::verify::{verify_and_correct, TileTolerance, VerifyPolicy};
use hchol_matrix::generate::{known_factor, uniform};
use hchol_matrix::Matrix;
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    g.sample_size(30);
    for &b in &[64usize, 128, 256] {
        let block = uniform(b, b, -1.0, 1.0, 1);
        g.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            let mut chk = Matrix::zeros(2, b);
            bench.iter(|| encode_into(black_box(&block), &mut chk));
        });
    }
    g.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("update");
    g.sample_size(30);
    for &b in &[64usize, 128, 256] {
        let (la, a) = known_factor(b, 2);
        let src = uniform(b, b, -1.0, 1.0, 3);
        let chk_src = encode(&src);
        let chk0 = encode(&a);
        g.bench_with_input(BenchmarkId::new("product(SYRK/GEMM)", b), &b, |bench, _| {
            bench.iter(|| {
                let mut chk = chk0.clone();
                update_product(&mut chk, black_box(&chk_src), black_box(&src));
                black_box(chk);
            });
        });
        g.bench_with_input(BenchmarkId::new("potf2(Alg.2)", b), &b, |bench, _| {
            bench.iter(|| {
                let mut chk = chk0.clone();
                update_potf2(&mut chk, black_box(&la));
                black_box(chk);
            });
        });
        g.bench_with_input(BenchmarkId::new("trsm", b), &b, |bench, _| {
            bench.iter(|| {
                let mut chk = chk0.clone();
                update_trsm(&mut chk, black_box(&la));
                black_box(chk);
            });
        });
    }
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify");
    g.sample_size(30);
    let policy = TileTolerance::Fixed(VerifyPolicy::default());
    for &b in &[64usize, 128, 256] {
        let data0 = uniform(b, b, -1.0, 1.0, 4);
        let chk0 = encode(&data0);
        g.bench_with_input(BenchmarkId::new("clean", b), &b, |bench, _| {
            bench.iter(|| {
                let mut data = data0.clone();
                let mut chk = chk0.clone();
                let recalc = encode(&data);
                black_box(verify_and_correct(&mut data, &mut chk, &recalc, &policy));
            });
        });
        g.bench_with_input(BenchmarkId::new("one_error", b), &b, |bench, _| {
            bench.iter(|| {
                let mut data = data0.clone();
                data.set(b / 2, b / 3, 42.0);
                let mut chk = chk0.clone();
                let recalc = encode(&data);
                black_box(verify_and_correct(&mut data, &mut chk, &recalc, &policy));
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_updates, bench_verify);
criterion_main!(benches);
