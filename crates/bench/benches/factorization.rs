//! Criterion benchmarks of whole factorizations — Execute mode (real
//! arithmetic) at small sizes, plus the TimingOnly simulation engine itself
//! at paper scale (measuring the simulator's own speed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hchol_core::magma::factor_magma;
use hchol_core::options::AbftOptions;
use hchol_core::schemes::{run_clean, SchemeKind};
use hchol_gpusim::profile::SystemProfile;
use hchol_gpusim::ExecMode;
use hchol_matrix::generate::spd_diag_dominant;
use std::hint::black_box;

fn bench_execute_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("factor_execute");
    g.sample_size(10);
    let profile = SystemProfile::test_profile();
    let opts = AbftOptions::default();
    for &n in &[64usize, 128] {
        let b = 16;
        let a = spd_diag_dominant(n, 7);
        g.bench_with_input(BenchmarkId::new("magma", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(factor_magma(&profile, ExecMode::Execute, n, b, Some(&a), false).unwrap())
            });
        });
        for kind in SchemeKind::all() {
            g.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |bench, _| {
                bench.iter(|| {
                    black_box(
                        run_clean(kind, &profile, ExecMode::Execute, n, b, &opts, Some(&a))
                            .unwrap(),
                    )
                });
            });
        }
    }
    g.finish();
}

fn bench_simulator_throughput(c: &mut Criterion) {
    // How fast the discrete-event engine replays a paper-scale run.
    let mut g = c.benchmark_group("simulator_timing_only");
    g.sample_size(10);
    let opts = AbftOptions::default();
    for (name, profile, n) in [
        ("tardis_20480", SystemProfile::tardis(), 20480usize),
        ("bulldozer_30720", SystemProfile::bulldozer64(), 30720),
    ] {
        let b = profile.default_block;
        g.bench_function(BenchmarkId::new("enhanced", name), |bench| {
            bench.iter(|| {
                black_box(
                    run_clean(
                        SchemeKind::Enhanced,
                        &profile,
                        ExecMode::TimingOnly,
                        n,
                        b,
                        &opts,
                        None,
                    )
                    .unwrap(),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_execute_mode, bench_simulator_throughput);
criterion_main!(benches);
