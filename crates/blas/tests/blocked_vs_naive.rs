//! Property tests pinning the blocked level-3 engine to the naive seed
//! kernels: for every operation, transposition, triangle, side, and
//! coefficient — across shapes straddling the micro-tile (`MR`/`NR`), the
//! macro-tile (`MC`/`KC`), and the empty/degenerate edges — the blocked
//! result must agree with the naive one to 1e-12 relative.

use hchol_blas::level3::{microkernel::MR, MC};
use hchol_blas::{gemm, naive_gemm, naive_syrk, syrk, trsm, trsv};
use hchol_matrix::generate::uniform;
use hchol_matrix::{Diag, Matrix, Side, Trans, Uplo};
use proptest::prelude::*;

/// Dimensions around every blocking boundary: 0 and 1, the micro-tile edge
/// (`MR−1`, `MR`, `MR+1`), mid-range odd sizes, and `3·MC+7` (several macro
/// stripes plus an edge) — per the micro-kernel with MR = 8, NR = 6.
const SIZES: &[usize] = &[0, 1, MR - 1, MR, MR + 1, 45, 64, 131, 3 * MC + 7];

fn dim() -> impl Strategy<Value = usize> {
    (0..SIZES.len()).prop_map(|i| SIZES[i])
}

/// The spec's coefficient set: the two BLAS fast paths and a general value.
fn coeff() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1.0), Just(-0.3)]
}

fn trans() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::No), Just(Trans::Yes)]
}

fn uplo() -> impl Strategy<Value = Uplo> {
    prop_oneof![Just(Uplo::Lower), Just(Uplo::Upper)]
}

fn side() -> impl Strategy<Value = Side> {
    prop_oneof![Just(Side::Left), Just(Side::Right)]
}

/// `max |x−y| / (1 + max |y|) ≤ tol`, elementwise over whole matrices.
fn rel_close(x: &Matrix, y: &Matrix, tol: f64) -> bool {
    assert_eq!(x.shape(), y.shape());
    let denom = 1.0 + y.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
    x.as_slice()
        .iter()
        .zip(y.as_slice())
        .all(|(a, b)| (a - b).abs() <= tol * denom)
}

/// Well-conditioned triangle for solves (diagonally dominant).
fn tri(n: usize, uplo: Uplo, seed: u64) -> Matrix {
    let mut a = uniform(n, n, -0.5, 0.5, seed);
    for j in 0..n {
        for i in 0..n {
            let zero = match uplo {
                Uplo::Lower => i < j,
                Uplo::Upper => i > j,
            };
            if zero {
                a.set(i, j, 0.0);
            }
        }
        a.set(j, j, 2.0 + 0.1 * (j % 7) as f64);
    }
    a
}

/// Naive TRSM reference built from the level-2 `trsv` alone: left side is a
/// solve per column; the right side solves the transposed system
/// `op(A)ᵀ·Xᵀ = alpha·Bᵀ` column-by-column.
fn reference_trsm(s: Side, up: Uplo, tr: Trans, dg: Diag, alpha: f64, a: &Matrix, b: &mut Matrix) {
    if alpha != 1.0 {
        b.scale(alpha);
    }
    match s {
        Side::Left => {
            for j in 0..b.cols() {
                trsv(up, tr, dg, a, b.col_mut(j));
            }
        }
        Side::Right => {
            let flipped = match tr {
                Trans::No => Trans::Yes,
                Trans::Yes => Trans::No,
            };
            let mut bt = b.transpose();
            for j in 0..bt.cols() {
                trsv(up, flipped, dg, a, bt.col_mut(j));
            }
            *b = bt.transpose();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_blocked_matches_naive(
        m in dim(), n in dim(), k in dim(),
        ta in trans(), tb in trans(),
        alpha in coeff(), beta in coeff(),
        seed in 0u64..1000,
    ) {
        let (ar, ac) = ta.apply((m, k));
        let (br, bc) = tb.apply((k, n));
        let a = uniform(ar, ac, -1.0, 1.0, seed);
        let b = uniform(br, bc, -1.0, 1.0, seed + 1);
        let mut c = uniform(m, n, -1.0, 1.0, seed + 2);
        let mut c_ref = c.clone();
        gemm(ta, tb, alpha, &a, &b, beta, &mut c);
        naive_gemm(ta, tb, alpha, &a, &b, beta, &mut c_ref);
        prop_assert!(
            rel_close(&c, &c_ref, 1e-12),
            "m={m} n={n} k={k} ta={ta:?} tb={tb:?} alpha={alpha} beta={beta}"
        );
    }

    #[test]
    fn syrk_blocked_matches_naive(
        n in dim(), k in dim(),
        up in uplo(), tr in trans(),
        alpha in coeff(), beta in coeff(),
        seed in 0u64..1000,
    ) {
        let (ar, ac) = tr.apply((n, k));
        let a = uniform(ar, ac, -1.0, 1.0, seed);
        let mut c = uniform(n, n, -1.0, 1.0, seed + 1);
        let mut c_ref = c.clone();
        syrk(up, tr, alpha, &a, beta, &mut c);
        naive_syrk(up, tr, alpha, &a, beta, &mut c_ref);
        // Naive comparison covers the opposite triangle too: both paths must
        // leave it exactly as it was.
        prop_assert!(
            rel_close(&c, &c_ref, 1e-12),
            "n={n} k={k} up={up:?} tr={tr:?} alpha={alpha} beta={beta}"
        );
    }

    #[test]
    fn trsm_blocked_matches_trsv_reference(
        asize in dim(), other in dim(),
        s in side(), up in uplo(), tr in trans(),
        unit in any::<bool>(),
        alpha in coeff(),
        seed in 0u64..1000,
    ) {
        let dg = if unit { Diag::Unit } else { Diag::NonUnit };
        let a = tri(asize, up, seed);
        let (m, n) = match s {
            Side::Left => (asize, other),
            Side::Right => (other, asize),
        };
        let b0 = uniform(m, n, -1.0, 1.0, seed + 1);
        let mut x = b0.clone();
        let mut x_ref = b0.clone();
        trsm(s, up, tr, dg, alpha, &a, &mut x);
        reference_trsm(s, up, tr, dg, alpha, &a, &mut x_ref);
        prop_assert!(
            rel_close(&x, &x_ref, 1e-12),
            "asize={asize} other={other} s={s:?} up={up:?} tr={tr:?} dg={dg:?} alpha={alpha}"
        );
    }
}
