//! Degenerate shapes: empty operands, 1×1 systems, single columns —
//! the boundaries where index arithmetic usually goes wrong.

use hchol_blas::level1::{asum, axpy, dot, iamax, nrm2, scal};
use hchol_blas::level2::{gemv, ger, trsv};
use hchol_blas::{gemm, potf2, potrf_blocked, syrk, trsm};
use hchol_matrix::{approx_eq, Diag, Matrix, Side, Trans, Uplo};

#[test]
fn level1_on_empty_slices() {
    let mut y: Vec<f64> = vec![];
    axpy(2.0, &[], &mut y);
    assert_eq!(dot::<f64>(&[], &[]), 0.0);
    scal(3.0, &mut y);
    assert_eq!(iamax::<f64>(&[]), None);
    assert_eq!(nrm2::<f64>(&[]), 0.0);
    assert_eq!(asum::<f64>(&[]), 0.0);
}

#[test]
fn gemv_with_zero_dimensions() {
    // 0-column matrix: y = beta*y only.
    let a = Matrix::zeros(3, 0);
    let mut y = vec![2.0; 3];
    gemv(Trans::No, 1.0, &a, &[], 0.5, &mut y);
    assert_eq!(y, vec![1.0; 3]);
    // 0-row matrix: empty y.
    let a = Matrix::zeros(0, 3);
    let mut y: Vec<f64> = vec![];
    gemv(Trans::No, 1.0, &a, &[1.0, 2.0, 3.0], 1.0, &mut y);
}

#[test]
fn ger_with_empty_vectors() {
    let mut a = Matrix::<f64>::zeros(0, 0);
    ger(1.0, &[], &[], &mut a);
    let mut a = Matrix::filled(2, 0, 0.0);
    ger(1.0, &[1.0, 2.0], &[], &mut a);
}

#[test]
fn one_by_one_everything() {
    let a = Matrix::from_col_major(1, 1, vec![4.0]).unwrap();
    // trsv: 4x = 8 ⇒ x = 2
    let mut x = vec![8.0];
    trsv(Uplo::Lower, Trans::No, Diag::NonUnit, &a, &mut x);
    assert_eq!(x, vec![2.0]);
    // potf2: chol(4) = 2
    let mut c = a.clone();
    potf2(&mut c, 0).unwrap();
    assert_eq!(c.get(0, 0), 2.0);
    // gemm 1x1
    let mut out = Matrix::zeros(1, 1);
    gemm(Trans::No, Trans::No, 1.0, &a, &a, 0.0, &mut out);
    assert_eq!(out.get(0, 0), 16.0);
    // syrk 1x1
    let mut s = Matrix::zeros(1, 1);
    syrk(Uplo::Lower, Trans::No, 1.0, &a, 0.0, &mut s);
    assert_eq!(s.get(0, 0), 16.0);
    // trsm 1x1
    let mut b = Matrix::from_col_major(1, 1, vec![8.0]).unwrap();
    trsm(
        Side::Left,
        Uplo::Lower,
        Trans::No,
        Diag::NonUnit,
        1.0,
        &a,
        &mut b,
    );
    assert_eq!(b.get(0, 0), 2.0);
}

#[test]
fn single_column_rhs_trsm_equals_trsv() {
    let l =
        Matrix::from_col_major(3, 3, vec![2.0, 1.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 6.0]).unwrap();
    let rhs: Vec<f64> = vec![2.0, -1.0, 5.0];
    let mut via_trsv = rhs.clone();
    trsv(Uplo::Lower, Trans::No, Diag::NonUnit, &l, &mut via_trsv);
    let mut via_trsm = Matrix::from_col_major(3, 1, rhs).unwrap();
    trsm(
        Side::Left,
        Uplo::Lower,
        Trans::No,
        Diag::NonUnit,
        1.0,
        &l,
        &mut via_trsm,
    );
    for (i, &v) in via_trsv.iter().enumerate() {
        assert!((via_trsm.get(i, 0) - v).abs() < 1e-14);
    }
}

#[test]
fn potrf_blocked_one_by_one_and_block_bigger_than_n() {
    let mut a = Matrix::from_col_major(1, 1, vec![9.0]).unwrap();
    potrf_blocked(&mut a, 64).unwrap();
    assert_eq!(a.get(0, 0), 3.0);

    let spd = hchol_matrix::generate::spd_diag_dominant(5, 1);
    let mut l1 = spd.clone();
    potrf_blocked(&mut l1, 999).unwrap(); // block ≫ n: single-tile path
    let mut l2 = spd.clone();
    potrf_blocked(&mut l2, 2).unwrap();
    assert!(approx_eq(&l1, &l2, 1e-12));
}

#[test]
fn gemm_outer_product_shape() {
    // (m×1)·(1×n): the thinnest possible inner dimension.
    let a = Matrix::from_col_major(3, 1, vec![1.0, 2.0, 3.0]).unwrap();
    let b = Matrix::from_col_major(1, 2, vec![10.0, 20.0]).unwrap();
    let mut c = Matrix::zeros(3, 2);
    gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
    assert_eq!(c.get(2, 1), 60.0);
    assert_eq!(c.get(0, 0), 10.0);
}

#[test]
fn syrk_zero_k_scales_only() {
    let a = Matrix::zeros(4, 0);
    let mut c = Matrix::filled(4, 4, 2.0);
    syrk(Uplo::Upper, Trans::No, 5.0, &a, 0.5, &mut c);
    assert_eq!(c.get(0, 3), 1.0, "upper scaled");
    assert_eq!(c.get(3, 0), 2.0, "lower untouched");
}
