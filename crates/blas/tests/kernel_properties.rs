//! Property tests: every optimized kernel agrees with the naive reference
//! implementation on arbitrary inputs, and algebraic identities hold.

use hchol_blas::level1;
use hchol_blas::level2::{gemv, symv};
use hchol_blas::reference::{ref_cholesky, ref_gemm, ref_gemv};
use hchol_blas::{gemm, potf2, syrk, trsm};
use hchol_matrix::{approx_eq, Diag, Matrix, Side, Trans, Uplo};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_col_major(rows, cols, v).unwrap())
}

fn trans() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::No), Just(Trans::Yes)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_matches_reference(
        ta in trans(),
        tb in trans(),
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed_a in matrix(7, 5),
        seed_b in matrix(5, 6),
        c0 in matrix(7, 6),
    ) {
        // Shape the stored operands to match the requested transpositions.
        let a = match ta { Trans::No => seed_a, Trans::Yes => seed_a.transpose() };
        let b = match tb { Trans::No => seed_b, Trans::Yes => seed_b.transpose() };
        let mut c_fast = c0.clone();
        let mut c_ref = c0;
        gemm(ta, tb, alpha, &a, &b, beta, &mut c_fast);
        ref_gemm(ta, tb, alpha, &a, &b, beta, &mut c_ref);
        prop_assert!(approx_eq(&c_fast, &c_ref, 1e-11));
    }

    #[test]
    fn gemv_matches_reference(
        t in trans(),
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        a in matrix(6, 4),
        x4 in proptest::collection::vec(-2.0f64..2.0, 4),
        x6 in proptest::collection::vec(-2.0f64..2.0, 6),
        y4 in proptest::collection::vec(-2.0f64..2.0, 4),
        y6 in proptest::collection::vec(-2.0f64..2.0, 6),
    ) {
        let (x, y0) = match t {
            Trans::No => (x4, y6),
            Trans::Yes => (x6, y4),
        };
        let mut y_fast = y0.clone();
        let mut y_ref = y0;
        gemv(t, alpha, &a, &x, beta, &mut y_fast);
        ref_gemv(t, alpha, &a, &x, beta, &mut y_ref);
        for (f, r) in y_fast.iter().zip(&y_ref) {
            prop_assert!((f - r).abs() < 1e-11);
        }
    }

    /// SYRK equals GEMM(A, Aᵀ) on the referenced triangle.
    #[test]
    fn syrk_matches_gemm_on_triangle(
        a in matrix(6, 4),
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        c0 in matrix(6, 6),
    ) {
        let mut c_syrk = c0.clone();
        syrk(Uplo::Lower, Trans::No, alpha, &a, beta, &mut c_syrk);
        let mut c_gemm = c0;
        gemm(Trans::No, Trans::Yes, alpha, &a, &a, beta, &mut c_gemm);
        for j in 0..6 {
            for i in j..6 {
                prop_assert!((c_syrk.get(i, j) - c_gemm.get(i, j)).abs() < 1e-11);
            }
        }
    }

    /// TRSM followed by multiplication with op(A) reconstructs alpha·B.
    #[test]
    fn trsm_solves_what_it_claims(
        b0 in matrix(5, 5),
        raw in matrix(5, 5),
        alpha in 0.5f64..2.0,
        t in trans(),
    ) {
        // Well-conditioned lower-triangular A.
        let mut l = raw;
        for j in 0..5 {
            for i in 0..j {
                l.set(i, j, 0.0);
            }
            l.set(j, j, 2.0 + l.get(j, j).abs());
        }
        let mut x = b0.clone();
        trsm(Side::Right, Uplo::Lower, t, Diag::NonUnit, alpha, &l, &mut x);
        let opa = match t { Trans::No => l.clone(), Trans::Yes => l.transpose() };
        let mut recon = Matrix::zeros(5, 5);
        gemm(Trans::No, Trans::No, 1.0, &x, &opa, 0.0, &mut recon);
        let mut want = b0;
        want.scale(alpha);
        prop_assert!(approx_eq(&recon, &want, 1e-9));
    }

    /// potf2 factors exactly what ref_cholesky factors, and L·Lᵀ = A.
    #[test]
    fn potf2_matches_reference_cholesky(g in matrix(6, 6)) {
        // Manufacture an SPD matrix.
        let mut a = Matrix::zeros(6, 6);
        gemm(Trans::No, Trans::Yes, 1.0, &g, &g, 0.0, &mut a);
        for i in 0..6 {
            let v = a.get(i, i) + 6.0;
            a.set(i, i, v);
        }
        let want = ref_cholesky(&a).expect("SPD by construction");
        let mut got = a.clone();
        potf2(&mut got, 0).expect("SPD by construction");
        hchol_matrix::triangular::force_lower(&mut got);
        prop_assert!(approx_eq(&got, &want, 1e-9));
    }

    /// symv with either triangle equals a full gemv.
    #[test]
    fn symv_matches_gemv(g in matrix(5, 5), x in proptest::collection::vec(-2.0f64..2.0, 5)) {
        let mut full = g.clone();
        full.symmetrize();
        let mut want = vec![0.0; 5];
        gemv(Trans::No, 1.0, &full, &x, 0.0, &mut want);
        for uplo in [Uplo::Lower, Uplo::Upper] {
            let mut y = vec![0.0; 5];
            symv(uplo, 1.0, &full, &x, 0.0, &mut y);
            for (a, b) in y.iter().zip(&want) {
                prop_assert!((a - b).abs() < 1e-11);
            }
        }
    }

    /// Level-1 identities: dot is symmetric & bilinear; axpy is linear.
    #[test]
    fn level1_identities(
        x in proptest::collection::vec(-3.0f64..3.0, 17),
        y in proptest::collection::vec(-3.0f64..3.0, 17),
        alpha in -2.0f64..2.0,
    ) {
        let d1 = level1::dot(&x, &y);
        let d2 = level1::dot(&y, &x);
        prop_assert!((d1 - d2).abs() < 1e-10);
        // axpy then dot == dot + alpha * dot
        let mut y2 = y.clone();
        level1::axpy(alpha, &x, &mut y2);
        let lhs = level1::dot(&x, &y2);
        let rhs = level1::dot(&x, &y) + alpha * level1::dot(&x, &x);
        prop_assert!((lhs - rhs).abs() < 1e-8);
        // nrm2² ≈ dot(x, x)
        let n2 = level1::nrm2(&x);
        prop_assert!((n2 * n2 - level1::dot(&x, &x)).abs() < 1e-8);
    }
}
