//! Rayon-parallel kernel variants (feature `parallel`, on by default).
//!
//! The simulated device charges time from its cost model, so these do not
//! change any experiment — they exist so that *real* wall-clock work
//! (Execute-mode tests, examples, and library users factoring actual
//! matrices) scales across host cores. Column-major storage makes columns
//! the natural parallel unit: each output column of a GEMM/TRSM is
//! independent.

use crate::level1::axpy;
use crate::level2::trsv;
use hchol_matrix::{Diag, Matrix, Trans, Uplo};
use rayon::prelude::*;

/// Parallel `C := alpha·op(A)·op(B) + beta·C`, parallelized over columns
/// of `C`. Falls back to a sequential inner kernel per column.
pub fn par_gemm(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, ka) = trans_a.apply(a.shape());
    let (kb, n) = trans_b.apply(b.shape());
    assert_eq!(ka, kb, "par_gemm inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "par_gemm output shape mismatch");
    let k = ka;
    let rows = c.rows();

    // Split the output into disjoint column slices and hand each to a task.
    c.as_mut_slice()
        .par_chunks_mut(rows.max(1))
        .enumerate()
        .for_each(|(j, ccol)| {
            if beta != 1.0 {
                if beta == 0.0 {
                    ccol.fill(0.0);
                } else {
                    for x in ccol.iter_mut() {
                        *x *= beta;
                    }
                }
            }
            if alpha == 0.0 || k == 0 {
                return;
            }
            match (trans_a, trans_b) {
                (Trans::No, Trans::No) => {
                    for l in 0..k {
                        axpy(alpha * b.get(l, j), a.col(l), ccol);
                    }
                }
                (Trans::No, Trans::Yes) => {
                    for l in 0..k {
                        axpy(alpha * b.get(j, l), a.col(l), ccol);
                    }
                }
                (Trans::Yes, Trans::No) => {
                    let bcol = b.col(j);
                    for (i, ci) in ccol.iter_mut().enumerate() {
                        *ci += alpha * crate::level1::dot(a.col(i), bcol);
                    }
                }
                (Trans::Yes, Trans::Yes) => {
                    for (i, ci) in ccol.iter_mut().enumerate() {
                        let acol = a.col(i);
                        let mut s = 0.0;
                        for (l, &ali) in acol.iter().enumerate() {
                            s += ali * b.get(j, l);
                        }
                        *ci += alpha * s;
                    }
                }
            }
        });
}

/// Parallel left-sided triangular solve `op(A)·X = alpha·B`: every column
/// of `B` is an independent `trsv`.
pub fn par_trsm_left(
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: f64,
    a: &Matrix,
    b: &mut Matrix,
) {
    assert!(a.is_square(), "par_trsm_left A must be square");
    assert_eq!(a.rows(), b.rows(), "par_trsm_left dimension mismatch");
    let rows = b.rows();
    b.as_mut_slice()
        .par_chunks_mut(rows.max(1))
        .for_each(|col| {
            if alpha != 1.0 {
                for x in col.iter_mut() {
                    *x *= alpha;
                }
            }
            trsv(uplo, trans, diag, a, col);
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level3::gemm;
    use crate::level3::trsm;
    use hchol_matrix::generate::uniform;
    use hchol_matrix::{approx_eq, Side};

    #[test]
    fn par_gemm_matches_sequential_all_transposes() {
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let a_shape = ta.apply((33, 17));
            let b_shape = tb.apply((17, 29));
            let a = uniform(a_shape.0, a_shape.1, -1.0, 1.0, 1);
            let b = uniform(b_shape.0, b_shape.1, -1.0, 1.0, 2);
            let mut c1 = uniform(33, 29, -1.0, 1.0, 3);
            let mut c2 = c1.clone();
            gemm(ta, tb, 1.3, &a, &b, 0.4, &mut c1);
            par_gemm(ta, tb, 1.3, &a, &b, 0.4, &mut c2);
            assert!(approx_eq(&c1, &c2, 1e-12), "ta={ta:?} tb={tb:?}");
        }
    }

    #[test]
    fn par_trsm_left_matches_sequential() {
        let n = 24;
        let mut l = uniform(n, n, -0.4, 0.4, 4);
        for j in 0..n {
            for i in 0..j {
                l.set(i, j, 0.0);
            }
            l.set(j, j, 3.0);
        }
        let b0 = uniform(n, 9, -1.0, 1.0, 5);
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            2.0,
            &l,
            &mut b1,
        );
        par_trsm_left(Uplo::Lower, Trans::No, Diag::NonUnit, 2.0, &l, &mut b2);
        assert!(approx_eq(&b1, &b2, 1e-12));
    }

    #[test]
    fn par_gemm_beta_zero_clears_nan() {
        let a = Matrix::identity(4);
        let b = Matrix::identity(4);
        let mut c = Matrix::filled(4, 4, f64::NAN);
        par_gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(approx_eq(&c, &Matrix::identity(4), 0.0));
    }

    use hchol_matrix::Matrix;
}
