//! Multithreaded kernel variants (feature `parallel`, on by default), built
//! on `std::thread::scope` — no external runtime.
//!
//! The simulated device charges time from its cost model, so these do not
//! change any experiment — they exist so that *real* wall-clock work
//! (Execute-mode tests, examples, and library users factoring actual
//! matrices) scales across host cores.
//!
//! Parallelism follows the blocked engine's macro-tiles: within each
//! `(jc, pc)` block the packed-B panel is shared read-only by the whole team
//! while `MC`-row stripes of `C` (each with its own packed-A buffer) are
//! dealt round-robin to the threads — stripes are disjoint, so no
//! synchronization is needed beyond the scope join. Small products and
//! single-core hosts fall through to the sequential engine.

use crate::level2::trsv;
use crate::level3::microkernel::{MR, NR};
use crate::level3::{
    apply_beta, gemm, gemm_fused, pack_a, pack_b, run_tiles, use_blocked, ChkAcc, MatMut, MatRef,
    KC, MC, NC,
};
use hchol_matrix::{Diag, Matrix, Trans, Uplo};

/// Number of worker threads the host offers.
fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parallel `C := alpha·op(A)·op(B) + beta·C`.
///
/// Same contract and (to rounding) same result as [`crate::gemm`];
/// products too small for the blocked engine — or hosts with one core —
/// run the sequential kernel.
pub fn par_gemm(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, ka) = trans_a.apply(a.shape());
    let (kb, n) = trans_b.apply(b.shape());
    assert_eq!(ka, kb, "par_gemm inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "par_gemm output shape mismatch");
    let k = ka;

    let threads = max_threads().min(m.div_ceil(MC));
    if threads <= 1 || !use_blocked(m, n, k) || alpha == 0.0 || k == 0 {
        gemm(trans_a, trans_b, alpha, a, b, beta, c);
        return;
    }

    apply_beta(beta, c.as_mut_slice());
    let av = MatRef::new(a, trans_a);
    let bv = MatRef::new(b, trans_b);
    let cv = MatMut::new(c);
    par_gemm_blocked(alpha, &av, &bv, &cv, threads);
}

/// [`par_gemm`] with an explicit team size instead of the host's core
/// count — the knob the kernel benchmarks sweep. `threads` is clamped to
/// the number of `MC` row stripes; `0` or `1` runs the sequential engine.
#[allow(clippy::too_many_arguments)]
pub fn par_gemm_with_threads(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    threads: usize,
) {
    let (m, ka) = trans_a.apply(a.shape());
    let (kb, n) = trans_b.apply(b.shape());
    assert_eq!(ka, kb, "par_gemm inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "par_gemm output shape mismatch");
    let k = ka;

    let threads = threads.min(m.div_ceil(MC));
    if threads <= 1 || !use_blocked(m, n, k) || alpha == 0.0 || k == 0 {
        gemm(trans_a, trans_b, alpha, a, b, beta, c);
        return;
    }

    apply_beta(beta, c.as_mut_slice());
    let av = MatRef::new(a, trans_a);
    let bv = MatRef::new(b, trans_b);
    let cv = MatMut::new(c);
    par_gemm_blocked(alpha, &av, &bv, &cv, threads);
}

/// Parallel [`crate::level3::gemm_fused`]: the product plus the two weighted
/// column checksums of the finished `C`, with per-thread epilogue
/// accumulators reduced after the macro-tile join.
#[allow(clippy::too_many_arguments)]
pub fn par_gemm_fused(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    chk: &mut Matrix,
) {
    par_gemm_fused_with_threads(trans_a, trans_b, alpha, a, b, beta, c, chk, max_threads());
}

/// [`par_gemm_fused`] with an explicit team size (see
/// [`par_gemm_with_threads`] for the clamping rules).
#[allow(clippy::too_many_arguments)]
pub fn par_gemm_fused_with_threads(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    chk: &mut Matrix,
    threads: usize,
) {
    let (m, ka) = trans_a.apply(a.shape());
    let (kb, n) = trans_b.apply(b.shape());
    assert_eq!(ka, kb, "par_gemm_fused inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "par_gemm_fused output shape mismatch");
    assert_eq!(
        chk.shape(),
        (2, n),
        "par_gemm_fused checksum shape mismatch"
    );
    let k = ka;

    let threads = threads.min(m.div_ceil(MC));
    if threads <= 1 || !use_blocked(m, n, k) || alpha == 0.0 || k == 0 {
        gemm_fused(trans_a, trans_b, alpha, a, b, beta, c, chk);
        return;
    }

    apply_beta(beta, c.as_mut_slice());
    let av = MatRef::new(a, trans_a);
    let bv = MatRef::new(b, trans_b);
    let cv = MatMut::new(c);
    let (mut v1, mut v2) = (vec![0.0; n], vec![0.0; n]);
    par_gemm_blocked_fused(alpha, &av, &bv, &cv, threads, &mut v1, &mut v2);
    for j in 0..n {
        chk.set(0, j, v1[j]);
        chk.set(1, j, v2[j]);
    }
}

/// Threaded macro-loop: identical blocking to the sequential engine, with
/// the `ic` stripe loop of each `(jc, pc)` block split across `threads`.
fn par_gemm_blocked(alpha: f64, a: &MatRef<'_>, b: &MatRef<'_>, c: &MatMut, threads: usize) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let stripes = m.div_ceil(MC);
    let mut packed_b = vec![0.0; KC * NC.div_ceil(NR) * NR];

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&b.sub(pc, jc, kc, nc), &mut packed_b);
            let pb: &[f64] = &packed_b;
            std::thread::scope(|s| {
                for t in 0..threads {
                    let (a, c) = (*a, *c);
                    s.spawn(move || {
                        let mut packed_a = vec![0.0; MC.div_ceil(MR) * MR * KC];
                        // Round-robin stripe assignment: stripe si → thread
                        // si mod threads. Stripes are disjoint C row ranges.
                        let mut si = t;
                        while si < stripes {
                            let ic = si * MC;
                            let mc = MC.min(m - ic);
                            pack_a(&a.sub(ic, pc, mc, kc), &mut packed_a);
                            run_tiles(
                                alpha,
                                kc,
                                mc,
                                nc,
                                &packed_a,
                                pb,
                                &c.sub(ic, jc, mc, nc),
                                None,
                            );
                            si += threads;
                        }
                    });
                }
            });
        }
    }
}

/// [`par_gemm_blocked`] with the fused checksum epilogue: each thread owns a
/// private `v1`/`v2` pair that its stripes' final-slab read-backs accumulate
/// into, and the pairs are reduced (in thread order) into the caller's
/// vectors once every macro tile has joined.
fn par_gemm_blocked_fused(
    alpha: f64,
    a: &MatRef<'_>,
    b: &MatRef<'_>,
    c: &MatMut,
    threads: usize,
    v1: &mut [f64],
    v2: &mut [f64],
) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let stripes = m.div_ceil(MC);
    let mut packed_b = vec![0.0; KC * NC.div_ceil(NR) * NR];
    let mut tacc: Vec<(Vec<f64>, Vec<f64>)> =
        (0..threads).map(|_| (vec![0.0; n], vec![0.0; n])).collect();

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let last_slab = pc + kc == k;
            pack_b(&b.sub(pc, jc, kc, nc), &mut packed_b);
            let pb: &[f64] = &packed_b;
            std::thread::scope(|s| {
                for (t, (tv1, tv2)) in tacc.iter_mut().enumerate() {
                    let (a, c) = (*a, *c);
                    s.spawn(move || {
                        let mut packed_a = vec![0.0; MC.div_ceil(MR) * MR * KC];
                        let mut si = t;
                        while si < stripes {
                            let ic = si * MC;
                            let mc = MC.min(m - ic);
                            pack_a(&a.sub(ic, pc, mc, kc), &mut packed_a);
                            let mut acc = last_slab.then(|| ChkAcc {
                                row0: ic,
                                col0: jc,
                                v1: &mut tv1[..],
                                v2: &mut tv2[..],
                            });
                            run_tiles(
                                alpha,
                                kc,
                                mc,
                                nc,
                                &packed_a,
                                pb,
                                &c.sub(ic, jc, mc, nc),
                                acc.as_mut(),
                            );
                            si += threads;
                        }
                    });
                }
            });
        }
    }
    for (tv1, tv2) in &tacc {
        for j in 0..n {
            v1[j] += tv1[j];
            v2[j] += tv2[j];
        }
    }
}

/// Parallel left-sided triangular solve `op(A)·X = alpha·B`: every column
/// of `B` is an independent `trsv`, dealt round-robin to the threads.
pub fn par_trsm_left(uplo: Uplo, trans: Trans, diag: Diag, alpha: f64, a: &Matrix, b: &mut Matrix) {
    assert!(a.is_square(), "par_trsm_left A must be square");
    assert_eq!(a.rows(), b.rows(), "par_trsm_left dimension mismatch");
    if alpha != 1.0 {
        apply_beta(alpha, b.as_mut_slice());
    }
    let n = b.cols();
    if b.rows() == 0 || n == 0 {
        return;
    }
    let threads = max_threads().min(n);
    if threads <= 1 {
        for j in 0..n {
            trsv(uplo, trans, diag, a, b.col_mut(j));
        }
        return;
    }
    let bv = MatMut::new(b);
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut j = t;
                while j < n {
                    // SAFETY: each column index is claimed by exactly one
                    // thread (j ≡ t mod threads) and columns are disjoint.
                    trsv(uplo, trans, diag, a, unsafe { bv.col_mut(j) });
                    j += threads;
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level3::gemm;
    use crate::level3::trsm;
    use hchol_matrix::generate::uniform;
    use hchol_matrix::{approx_eq, Matrix, Side};

    #[test]
    fn par_gemm_matches_sequential_all_transposes() {
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let a_shape = ta.apply((33, 17));
            let b_shape = tb.apply((17, 29));
            let a = uniform(a_shape.0, a_shape.1, -1.0, 1.0, 1);
            let b = uniform(b_shape.0, b_shape.1, -1.0, 1.0, 2);
            let mut c1 = uniform(33, 29, -1.0, 1.0, 3);
            let mut c2 = c1.clone();
            gemm(ta, tb, 1.3, &a, &b, 0.4, &mut c1);
            par_gemm(ta, tb, 1.3, &a, &b, 0.4, &mut c2);
            assert!(approx_eq(&c1, &c2, 1e-12), "ta={ta:?} tb={tb:?}");
        }
    }

    #[test]
    fn threaded_macro_loop_matches_sequential() {
        // Drive par_gemm_blocked directly with several threads so the
        // threaded path is exercised even on single-core CI hosts.
        let (m, n, k) = (2 * MC + 9, NC.min(80) + 7, KC + 5);
        let a = uniform(m, k, -1.0, 1.0, 6);
        let b = uniform(k, n, -1.0, 1.0, 7);
        let mut c1 = uniform(m, n, -1.0, 1.0, 8);
        let mut c2 = c1.clone();
        gemm(Trans::No, Trans::No, 0.9, &a, &b, -0.2, &mut c1);
        apply_beta(-0.2, c2.as_mut_slice());
        let av = MatRef::new(&a, Trans::No);
        let bv = MatRef::new(&b, Trans::No);
        let cv = MatMut::new(&mut c2);
        par_gemm_blocked(0.9, &av, &bv, &cv, 3);
        assert!(approx_eq(&c1, &c2, 1e-12));
    }

    #[test]
    fn par_trsm_left_matches_sequential() {
        let n = 24;
        let mut l = uniform(n, n, -0.4, 0.4, 4);
        for j in 0..n {
            for i in 0..j {
                l.set(i, j, 0.0);
            }
            l.set(j, j, 3.0);
        }
        let b0 = uniform(n, 9, -1.0, 1.0, 5);
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            2.0,
            &l,
            &mut b1,
        );
        par_trsm_left(Uplo::Lower, Trans::No, Diag::NonUnit, 2.0, &l, &mut b2);
        assert!(approx_eq(&b1, &b2, 1e-12));
    }

    #[test]
    fn par_gemm_fused_matches_sequential_across_thread_counts() {
        // Checksum accumulation is per-thread and reduced at the join; every
        // team size must agree with the sequential fused engine to rounding.
        let (m, n, k) = (2 * MC + 9, 60, KC + 5);
        let a = uniform(m, k, -1.0, 1.0, 31);
        let b = uniform(k, n, -1.0, 1.0, 32);
        let c0 = uniform(m, n, -1.0, 1.0, 33);
        let mut c_ref = c0.clone();
        let mut chk_ref = Matrix::zeros(2, n);
        gemm_fused(
            Trans::No,
            Trans::No,
            0.9,
            &a,
            &b,
            -0.2,
            &mut c_ref,
            &mut chk_ref,
        );
        for threads in [1, 2, 3, 4] {
            let mut c = c0.clone();
            let mut chk = Matrix::zeros(2, n);
            par_gemm_fused_with_threads(
                Trans::No,
                Trans::No,
                0.9,
                &a,
                &b,
                -0.2,
                &mut c,
                &mut chk,
                threads,
            );
            assert!(approx_eq(&c, &c_ref, 0.0), "threads={threads}");
            assert!(approx_eq(&chk, &chk_ref, 1e-10), "threads={threads}");
        }
    }

    #[test]
    fn par_gemm_fused_transposes_match_reference() {
        for (ta, tb) in [
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let (m, n, k) = (MC + 11, 47, KC + 3);
            let a_shape = ta.apply((m, k));
            let b_shape = tb.apply((k, n));
            let a = uniform(a_shape.0, a_shape.1, -1.0, 1.0, 34);
            let b = uniform(b_shape.0, b_shape.1, -1.0, 1.0, 35);
            let mut c = uniform(m, n, -1.0, 1.0, 36);
            let mut c_ref = c.clone();
            let mut chk = Matrix::zeros(2, n);
            let mut chk_ref = Matrix::zeros(2, n);
            par_gemm_fused_with_threads(ta, tb, 1.2, &a, &b, 0.3, &mut c, &mut chk, 3);
            gemm_fused(ta, tb, 1.2, &a, &b, 0.3, &mut c_ref, &mut chk_ref);
            assert!(approx_eq(&c, &c_ref, 0.0), "ta={ta:?} tb={tb:?}");
            assert!(approx_eq(&chk, &chk_ref, 1e-10), "ta={ta:?} tb={tb:?}");
        }
    }

    #[test]
    fn par_gemm_with_threads_matches_sequential() {
        let (m, n, k) = (2 * MC + 1, 52, KC + 9);
        let a = uniform(m, k, -1.0, 1.0, 37);
        let b = uniform(k, n, -1.0, 1.0, 38);
        let mut c1 = uniform(m, n, -1.0, 1.0, 39);
        let mut c2 = c1.clone();
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c1);
        par_gemm_with_threads(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c2, 4);
        assert!(approx_eq(&c1, &c2, 1e-12));
    }

    #[test]
    fn par_gemm_beta_zero_clears_nan() {
        let a = Matrix::identity(4);
        let b = Matrix::identity(4);
        let mut c = Matrix::filled(4, 4, f64::NAN);
        par_gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(approx_eq(&c, &Matrix::identity(4), 0.0));
    }
}
