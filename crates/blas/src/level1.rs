//! BLAS level-1: vector-vector kernels, generic over the element precision.
//!
//! Unlike the matrix-level APIs (which take `f64` scale factors and convert
//! at the edge), these take their scalars in `S`: they sit inside the inner
//! loops, so an f32 instantiation must do genuinely single-precision work.

use hchol_matrix::Scalar;

/// `y := alpha * x + y`. Panics if lengths differ.
#[inline]
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    if alpha == S::ZERO {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * *xi;
    }
}

/// Dot product `xᵀ·y`, accumulated in the working precision. Panics if
/// lengths differ.
#[inline]
pub fn dot<S: Scalar>(x: &[S], y: &[S]) -> S {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    // Four-way unrolled accumulation: faster and (by splitting the
    // dependency chain) slightly more accurate than a single accumulator.
    let mut acc = [S::ZERO; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let b = c * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = S::ZERO;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `x := alpha * x`.
#[inline]
pub fn scal<S: Scalar>(alpha: S, x: &mut [S]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Index of the element with the largest absolute value (first on ties).
/// Returns `None` for an empty slice.
pub fn iamax<S: Scalar>(x: &[S]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs().to_f64();
        match best {
            Some((_, b)) if a <= b => {}
            _ => best = Some((i, a)),
        }
    }
    best.map(|(i, _)| i)
}

/// Euclidean norm with overflow-safe scaling (computed in `f64`).
pub fn nrm2<S: Scalar>(x: &[S]) -> f64 {
    hchol_matrix::norms::vec_norm2(x)
}

/// Sum of absolute values (accumulated in `f64`).
pub fn asum<S: Scalar>(x: &[S]) -> f64 {
    x.iter().map(|v| v.abs().to_f64()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpy_alpha_zero_is_noop() {
        let x = [f64::NAN; 3];
        let mut y = [1.0, 2.0, 3.0];
        axpy(0.0, &x, &mut y);
        assert_eq!(y, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..13).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..13).map(|i| (i * 2) as f64).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_eq!(dot(&x, &y), naive);
        assert_eq!(dot::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0, -2.0];
        scal(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn iamax_finds_peak() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), Some(1));
        assert_eq!(iamax(&[2.0, -2.0]), Some(0)); // first on tie
        assert_eq!(iamax::<f64>(&[]), None);
    }

    #[test]
    fn asum_and_nrm2() {
        assert_eq!(asum(&[1.0, -2.0, 3.0]), 6.0);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn f32_kernels_run_in_single_precision() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [0.5f32, 0.5, 0.5];
        axpy(2.0f32, &x, &mut y);
        assert_eq!(y, [2.5f32, 4.5, 6.5]);
        assert_eq!(dot(&x, &x), 14.0f32);
        assert_eq!(iamax(&x), Some(2));
        // f32 round-off is observable: (1 + eps32/2) collapses to 1.
        let tiny = [1.0f32 + f32::EPSILON / 2.0];
        assert_eq!(tiny[0], 1.0f32);
    }
}
