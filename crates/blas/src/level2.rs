//! BLAS level-2: matrix-vector kernels.
//!
//! The checksum *recalculation* at the heart of the paper's verification step
//! is exactly a pair of these kernels (`vᵀ·A` for the two weight vectors) —
//! the BLAS-2 shape is why the paper calls recalculation "low efficiency on
//! GPU" and motivates Optimization 1 (running many of them concurrently).

use crate::level1::{axpy, dot};
use hchol_matrix::{Diag, Matrix, Scalar, Trans, Uplo};

/// `y := alpha * op(A) * x + beta * y`.
///
/// Shapes: `op(A)` is `m × n`, `x` has length `n`, `y` has length `m`.
pub fn gemv<S: Scalar>(trans: Trans, alpha: f64, a: &Matrix<S>, x: &[S], beta: f64, y: &mut [S]) {
    let (m, n) = trans.apply(a.shape());
    assert_eq!(x.len(), n, "gemv x length mismatch");
    assert_eq!(y.len(), m, "gemv y length mismatch");
    if beta != 1.0 {
        let be = S::from_f64(beta);
        for yi in y.iter_mut() {
            *yi *= be;
        }
    }
    if alpha == 0.0 {
        return;
    }
    let al = S::from_f64(alpha);
    match trans {
        // y += alpha * A * x: accumulate columns (axpy form, unit stride).
        Trans::No => {
            for (j, &xj) in x.iter().enumerate() {
                axpy(al * xj, a.col(j), y);
            }
        }
        // y += alpha * Aᵀ * x: dot of each column with x (unit stride).
        Trans::Yes => {
            for (j, yj) in y.iter_mut().enumerate() {
                *yj += al * dot(a.col(j), x);
            }
        }
    }
}

/// Rank-1 update `A := alpha * x * yᵀ + A`.
pub fn ger<S: Scalar>(alpha: f64, x: &[S], y: &[S], a: &mut Matrix<S>) {
    assert_eq!(x.len(), a.rows(), "ger x length mismatch");
    assert_eq!(y.len(), a.cols(), "ger y length mismatch");
    if alpha == 0.0 {
        return;
    }
    let al = S::from_f64(alpha);
    for (j, &yj) in y.iter().enumerate() {
        axpy(al * yj, x, a.col_mut(j));
    }
}

/// Solve the triangular system `op(A) · x = b` in place (`x` holds `b` on
/// entry and the solution on exit).
pub fn trsv<S: Scalar>(uplo: Uplo, trans: Trans, diag: Diag, a: &Matrix<S>, x: &mut [S]) {
    let n = a.rows();
    assert!(a.is_square(), "trsv requires square A");
    assert_eq!(x.len(), n, "trsv x length mismatch");
    match (uplo, trans) {
        // Forward substitution with L.
        (Uplo::Lower, Trans::No) => {
            for j in 0..n {
                if x[j] != S::ZERO {
                    if diag == Diag::NonUnit {
                        x[j] /= a.get(j, j);
                    }
                    let xj = x[j];
                    let col = a.col(j);
                    for i in (j + 1)..n {
                        x[i] -= xj * col[i];
                    }
                }
            }
        }
        // Back substitution with Lᵀ (an upper-triangular system).
        (Uplo::Lower, Trans::Yes) => {
            for j in (0..n).rev() {
                let col = a.col(j);
                let mut s = x[j];
                for i in (j + 1)..n {
                    s -= col[i] * x[i];
                }
                x[j] = if diag == Diag::NonUnit { s / col[j] } else { s };
            }
        }
        // Back substitution with U.
        (Uplo::Upper, Trans::No) => {
            for j in (0..n).rev() {
                if x[j] != S::ZERO {
                    if diag == Diag::NonUnit {
                        x[j] /= a.get(j, j);
                    }
                    let xj = x[j];
                    let col = a.col(j);
                    for (i, xi) in x.iter_mut().enumerate().take(j) {
                        *xi -= xj * col[i];
                    }
                }
            }
        }
        // Forward substitution with Uᵀ.
        (Uplo::Upper, Trans::Yes) => {
            for j in 0..n {
                let col = a.col(j);
                let mut s = x[j];
                for (i, xi) in x.iter().enumerate().take(j) {
                    s -= col[i] * *xi;
                }
                x[j] = if diag == Diag::NonUnit { s / col[j] } else { s };
            }
        }
    }
}

/// Symmetric matrix-vector product `y := alpha·A·x + beta·y` referencing only
/// the given triangle of `A`.
pub fn symv<S: Scalar>(uplo: Uplo, alpha: f64, a: &Matrix<S>, x: &[S], beta: f64, y: &mut [S]) {
    let n = a.rows();
    assert!(a.is_square(), "symv requires square A");
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), n);
    if beta != 1.0 {
        let be = S::from_f64(beta);
        for yi in y.iter_mut() {
            *yi *= be;
        }
    }
    if alpha == 0.0 {
        return;
    }
    let alpha = S::from_f64(alpha);
    match uplo {
        Uplo::Lower => {
            for j in 0..n {
                let col = a.col(j);
                let mut t = col[j] * x[j];
                for i in (j + 1)..n {
                    y[i] += alpha * col[i] * x[j];
                    t += col[i] * x[i];
                }
                y[j] += alpha * t;
            }
        }
        Uplo::Upper => {
            for j in 0..n {
                let col = a.col(j);
                let mut t = col[j] * x[j];
                for i in 0..j {
                    y[i] += alpha * col[i] * x[j];
                    t += col[i] * x[i];
                }
                y[j] += alpha * t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hchol_matrix::Matrix;

    fn sample() -> Matrix {
        // 3x2: col0=[1,2,3], col1=[4,5,6]
        Matrix::from_col_major(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn gemv_no_trans() {
        let a = sample();
        let mut y = vec![1.0; 3];
        gemv(Trans::No, 1.0, &a, &[1.0, 10.0], 0.0, &mut y);
        assert_eq!(y, vec![41.0, 52.0, 63.0]);
    }

    #[test]
    fn gemv_trans() {
        let a = sample();
        let mut y = vec![100.0; 2];
        gemv(Trans::Yes, 2.0, &a, &[1.0, 1.0, 1.0], 1.0, &mut y);
        // Aᵀ·1 = [6, 15], y = 100 + 2*[6,15]
        assert_eq!(y, vec![112.0, 130.0]);
    }

    #[test]
    fn gemv_beta_scaling_even_with_zero_alpha() {
        let a = sample();
        let mut y = vec![2.0, 4.0, 6.0];
        gemv(Trans::No, 0.0, &a, &[9.0, 9.0], 0.5, &mut y);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Matrix::zeros(2, 3);
        ger(1.0, &[1.0, 2.0], &[3.0, 4.0, 5.0], &mut a);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 2), 10.0);
    }

    #[test]
    fn trsv_lower_roundtrip() {
        let l = Matrix::from_col_major(3, 3, vec![2.0, 1.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 6.0])
            .unwrap();
        let x_true = [1.0, -2.0, 0.5];
        // b = L * x
        let mut b = vec![0.0; 3];
        gemv(Trans::No, 1.0, &l, &x_true, 0.0, &mut b);
        trsv(Uplo::Lower, Trans::No, Diag::NonUnit, &l, &mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-14);
        }
    }

    #[test]
    fn trsv_lower_trans_roundtrip() {
        let l = Matrix::from_col_major(3, 3, vec![2.0, 1.0, 3.0, 0.0, 4.0, 5.0, 0.0, 0.0, 6.0])
            .unwrap();
        let x_true = [0.25, 1.0, -1.0];
        let mut b = vec![0.0; 3];
        gemv(Trans::Yes, 1.0, &l, &x_true, 0.0, &mut b);
        trsv(Uplo::Lower, Trans::Yes, Diag::NonUnit, &l, &mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-14);
        }
    }

    #[test]
    fn trsv_upper_both_transposes() {
        let u = Matrix::from_col_major(3, 3, vec![3.0, 0.0, 0.0, -1.0, 2.0, 0.0, 4.0, 1.0, 5.0])
            .unwrap();
        for trans in [Trans::No, Trans::Yes] {
            let x_true = [1.0, 2.0, 3.0];
            let mut b = vec![0.0; 3];
            gemv(trans, 1.0, &u, &x_true, 0.0, &mut b);
            trsv(Uplo::Upper, trans, Diag::NonUnit, &u, &mut b);
            for (got, want) in b.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-13, "trans={trans:?}");
            }
        }
    }

    #[test]
    fn trsv_unit_diag_ignores_stored_diagonal() {
        let mut l = Matrix::identity(2);
        l.set(0, 0, 100.0); // must be ignored under Diag::Unit
        l.set(1, 0, 1.0);
        let mut x = vec![1.0, 3.0];
        trsv(Uplo::Lower, Trans::No, Diag::Unit, &l, &mut x);
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn symv_matches_full_gemv() {
        // Full symmetric matrix, but store garbage in the unused triangle.
        let full = Matrix::from_col_major(3, 3, vec![2.0, 1.0, 4.0, 1.0, 3.0, 5.0, 4.0, 5.0, 6.0])
            .unwrap();
        let x = [1.0, -1.0, 2.0];
        let mut want = vec![0.0; 3];
        gemv(Trans::No, 1.5, &full, &x, 0.0, &mut want);

        for uplo in [Uplo::Lower, Uplo::Upper] {
            let mut tri = full.clone();
            // poison the other triangle
            for j in 0..3 {
                for i in 0..3 {
                    let poison = match uplo {
                        Uplo::Lower => i < j,
                        Uplo::Upper => i > j,
                    };
                    if poison {
                        tri.set(i, j, f64::NAN);
                    }
                }
            }
            let mut y = vec![0.0; 3];
            symv(uplo, 1.5, &tri, &x, 0.0, &mut y);
            for (got, w) in y.iter().zip(&want) {
                assert!((got - w).abs() < 1e-14, "uplo={uplo:?}");
            }
        }
    }
}
