//! Naive reference implementations used only to validate the optimized
//! kernels (triple loops, no blocking, no tricks).

use hchol_matrix::{Matrix, Scalar, Trans};

/// Element of `op(A)`.
fn op_get<S: Scalar>(a: &Matrix<S>, trans: Trans, i: usize, j: usize) -> S {
    match trans {
        Trans::No => a.get(i, j),
        Trans::Yes => a.get(j, i),
    }
}

/// Reference GEMM: `C := alpha * op(A) * op(B) + beta * C`.
pub fn ref_gemm<S: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix<S>,
    b: &Matrix<S>,
    beta: f64,
    c: &mut Matrix<S>,
) {
    let (m, k) = trans_a.apply(a.shape());
    let (k2, n) = trans_b.apply(b.shape());
    assert_eq!(k, k2);
    assert_eq!(c.shape(), (m, n));
    let (al, be) = (S::from_f64(alpha), S::from_f64(beta));
    for j in 0..n {
        for i in 0..m {
            let mut s = S::ZERO;
            for l in 0..k {
                s += op_get(a, trans_a, i, l) * op_get(b, trans_b, l, j);
            }
            let v = al * s + be * c.get(i, j);
            c.set(i, j, v);
        }
    }
}

/// Reference matrix-vector product `y := alpha * op(A) * x + beta * y`.
pub fn ref_gemv<S: Scalar>(
    trans: Trans,
    alpha: f64,
    a: &Matrix<S>,
    x: &[S],
    beta: f64,
    y: &mut [S],
) {
    let (m, n) = trans.apply(a.shape());
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), m);
    let (al, be) = (S::from_f64(alpha), S::from_f64(beta));
    for (i, yi) in y.iter_mut().enumerate() {
        let mut s = S::ZERO;
        for (j, xj) in x.iter().enumerate() {
            s += op_get(a, trans, i, j) * *xj;
        }
        *yi = al * s + be * *yi;
    }
}

/// Reference full (not triangle-restricted) `A·Aᵀ` or `Aᵀ·A`.
pub fn ref_aat<S: Scalar>(a: &Matrix<S>, trans: Trans) -> Matrix<S> {
    let (n, _) = trans.apply(a.shape());
    let mut c = Matrix::zeros(n, n);
    match trans {
        Trans::No => ref_gemm(Trans::No, Trans::Yes, 1.0, a, a, 0.0, &mut c),
        Trans::Yes => ref_gemm(Trans::Yes, Trans::No, 1.0, a, a, 0.0, &mut c),
    }
    c
}

/// Reference unblocked Cholesky (outer-product form, to cross-check the
/// inner-product `potf2`). Returns the lower factor as a new matrix.
pub fn ref_cholesky<S: Scalar>(a: &Matrix<S>) -> Option<Matrix<S>> {
    assert!(a.is_square());
    let n = a.rows();
    let mut w = a.clone();
    for j in 0..n {
        let d = w.get(j, j);
        if d <= S::ZERO || !d.is_finite() {
            return None;
        }
        let ljj = d.sqrt();
        w.set(j, j, ljj);
        for i in (j + 1)..n {
            let v = w.get(i, j) / ljj;
            w.set(i, j, v);
        }
        for k in (j + 1)..n {
            for i in k..n {
                let v = w.get(i, k) - w.get(i, j) * w.get(k, j);
                w.set(i, k, v);
            }
        }
    }
    hchol_matrix::triangular::force_lower(&mut w);
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potrf::potf2;
    use hchol_matrix::generate::{spd_diag_dominant, uniform};
    use hchol_matrix::{approx_eq, Trans};

    #[test]
    fn ref_gemm_identity() {
        let a = uniform(3, 3, -1.0, 1.0, 1);
        let i = Matrix::identity(3);
        let mut c = Matrix::zeros(3, 3);
        ref_gemm(Trans::No, Trans::No, 1.0, &a, &i, 0.0, &mut c);
        assert!(approx_eq(&c, &a, 1e-15));
    }

    #[test]
    fn ref_gemv_matches_gemm_column() {
        let a = uniform(4, 3, -1.0, 1.0, 2);
        let x = [1.0, 2.0, 3.0];
        let mut y = vec![0.0; 4];
        ref_gemv(Trans::No, 1.0, &a, &x, 0.0, &mut y);
        let xm = Matrix::from_col_major(3, 1, x.to_vec()).unwrap();
        let mut c = Matrix::zeros(4, 1);
        ref_gemm(Trans::No, Trans::No, 1.0, &a, &xm, 0.0, &mut c);
        for (i, yi) in y.iter().enumerate() {
            assert!((yi - c.get(i, 0)).abs() < 1e-14);
        }
    }

    #[test]
    fn outer_and_inner_product_cholesky_agree() {
        let a = spd_diag_dominant(20, 3);
        let want = ref_cholesky(&a).unwrap();
        let mut got = a.clone();
        potf2(&mut got, 0).unwrap();
        hchol_matrix::triangular::force_lower(&mut got);
        assert!(approx_eq(&got, &want, 1e-11));
    }

    #[test]
    fn ref_cholesky_rejects_indefinite() {
        let mut a = Matrix::identity(3);
        a.set(2, 2, -4.0);
        assert!(ref_cholesky(&a).is_none());
    }

    #[test]
    fn ref_aat_is_symmetric() {
        let a = uniform(4, 6, -1.0, 1.0, 9);
        let c = ref_aat(&a, Trans::No);
        assert!(hchol_matrix::triangular::is_symmetric(&c, 1e-13));
        let ct = ref_aat(&a, Trans::Yes);
        assert_eq!(ct.shape(), (6, 6));
    }
}
