//! Cholesky factorization: unblocked (`POTF2`), blocked on contiguous
//! storage, and tiled (the CPU reference for the hybrid driver).

use crate::level3::{gemm, syrk, trsm};
use hchol_matrix::{Diag, Matrix, MatrixError, Scalar, Side, TileMatrix, Trans, Uplo};

/// Unblocked lower Cholesky `A = L·Lᵀ` in place (the `POTF2` MAGMA runs on
/// the CPU for each diagonal block).
///
/// Only the lower triangle is referenced and written; the strictly upper
/// triangle is left untouched. `pivot_offset` is added to the reported pivot
/// index on failure so callers factoring a sub-block can report global
/// indices.
pub fn potf2<S: Scalar>(a: &mut Matrix<S>, pivot_offset: usize) -> Result<(), MatrixError> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    for j in 0..n {
        // d = a[j,j] - Σ_{k<j} l[j,k]²
        let mut d = a.get(j, j);
        for k in 0..j {
            let ljk = a.get(j, k);
            d -= ljk * ljk;
        }
        if d <= S::ZERO || !d.is_finite() {
            return Err(MatrixError::NotPositiveDefinite {
                pivot: pivot_offset + j,
                value: d.to_f64(),
            });
        }
        let ljj = d.sqrt();
        a.set(j, j, ljj);
        // Column update: l[i,j] = (a[i,j] - Σ_{k<j} l[i,k]·l[j,k]) / l[j,j]
        for i in (j + 1)..n {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= a.get(i, k) * a.get(j, k);
            }
            a.set(i, j, s / ljj);
        }
    }
    Ok(())
}

/// Blocked right-looking lower Cholesky on contiguous storage.
///
/// Identical math to the hybrid driver but entirely on the host; used as the
/// trusted oracle in tests and by examples that don't need the simulator.
pub fn potrf_blocked<S: Scalar>(a: &mut Matrix<S>, block: usize) -> Result<(), MatrixError> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare { shape: a.shape() });
    }
    let mut tiles = TileMatrix::from_dense(a, block.max(1))?;
    potrf_tiled(&mut tiles)?;
    *a = tiles.to_dense();
    // Zero the strictly-upper triangle so the output is an explicit L.
    hchol_matrix::triangular::force_lower(a);
    Ok(())
}

/// Tiled right-looking lower Cholesky over a [`TileMatrix`].
///
/// This is the *inner-product* (left-looking at the block level is what the
/// paper calls inner product) order MAGMA uses — Algorithm 1 of the paper:
/// for each block column `j`: SYRK the diagonal block against the factored
/// panel to its left, GEMM the sub-panel, POTF2 the diagonal block, TRSM the
/// sub-panel. Only tiles on or below the diagonal are meaningful.
pub fn potrf_tiled<S: Scalar>(a: &mut TileMatrix<S>) -> Result<(), MatrixError> {
    if a.rows() != a.cols() {
        return Err(MatrixError::NotSquare {
            shape: (a.rows(), a.cols()),
        });
    }
    let nt = a.grid_rows();
    let block = a.block();
    for j in 0..nt {
        // SYRK: A[j,j] -= Σ_{k<j} L[j,k] · L[j,k]ᵀ
        for k in 0..j {
            let (diag, ljk) = a.tile_pair((j, j), (j, k));
            syrk(Uplo::Lower, Trans::No, -1.0, ljk, 1.0, diag);
        }
        // POTF2 on the diagonal block.
        potf2(a.tile_mut(j, j), j * block)?;
        // GEMM: A[i,j] -= L[i,k] · L[j,k]ᵀ for i > j, k < j
        for i in (j + 1)..nt {
            for k in 0..j {
                // Borrow the target tile and the two source tiles. The two
                // sources are distinct from the target; clone the smaller
                // source to sidestep a triple disjoint borrow.
                let ljk = a.tile(j, k).clone();
                let (tij, lik) = a.tile_pair((i, j), (i, k));
                gemm(Trans::No, Trans::Yes, -1.0, lik, &ljk, 1.0, tij);
            }
            // TRSM: A[i,j] := A[i,j] · (L[j,j]ᵀ)⁻¹
            let (tij, ljj) = a.tile_pair((i, j), (j, j));
            trsm(
                Side::Right,
                Uplo::Lower,
                Trans::Yes,
                Diag::NonUnit,
                1.0,
                ljj,
                tij,
            );
        }
    }
    Ok(())
}

/// Reconstruct `L·Lᵀ` from the lower triangle of a factored matrix — the
/// standard residual check for Cholesky.
pub fn reconstruct_lower<S: Scalar>(l: &Matrix<S>) -> Matrix<S> {
    let n = l.rows();
    let mut ll = l.clone();
    hchol_matrix::triangular::force_lower(&mut ll);
    let mut a = Matrix::zeros(n, n);
    gemm(Trans::No, Trans::Yes, 1.0, &ll, &ll, 0.0, &mut a);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use hchol_matrix::generate::{known_factor, spd_diag_dominant};
    use hchol_matrix::{approx_eq, relative_residual};

    #[test]
    fn potf2_recovers_known_factor() {
        let (l_true, a) = known_factor(8, 1);
        let mut l = a.clone();
        potf2(&mut l, 0).unwrap();
        hchol_matrix::triangular::force_lower(&mut l);
        assert!(approx_eq(&l, &l_true, 1e-12));
    }

    #[test]
    fn potf2_rejects_non_spd() {
        let mut a = Matrix::identity(3);
        a.set(1, 1, -1.0);
        let err = potf2(&mut a, 10).unwrap_err();
        match err {
            MatrixError::NotPositiveDefinite { pivot, value } => {
                assert_eq!(pivot, 11);
                assert!(value <= 0.0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn potf2_rejects_nan_pivot() {
        let mut a = Matrix::identity(2);
        a.set(0, 0, f64::NAN);
        assert!(matches!(
            potf2(&mut a, 0),
            Err(MatrixError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn potf2_rejects_rectangular() {
        let mut a = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(
            potf2(&mut a, 0),
            Err(MatrixError::NotSquare { .. })
        ));
    }

    #[test]
    fn blocked_matches_unblocked() {
        let a = spd_diag_dominant(37, 5); // deliberately not a block multiple
        let mut l_unblocked = a.clone();
        potf2(&mut l_unblocked, 0).unwrap();
        hchol_matrix::triangular::force_lower(&mut l_unblocked);
        for block in [1, 4, 8, 16, 37, 64] {
            let mut l = a.clone();
            potrf_blocked(&mut l, block).unwrap();
            assert!(
                approx_eq(&l, &l_unblocked, 1e-10),
                "block size {block} diverges"
            );
        }
    }

    #[test]
    fn blocked_residual_small() {
        let a = spd_diag_dominant(64, 6);
        let mut l = a.clone();
        potrf_blocked(&mut l, 16).unwrap();
        let recon = reconstruct_lower(&l);
        assert!(relative_residual(&recon, &a) < 1e-13);
    }

    #[test]
    fn tiled_reports_global_pivot() {
        // SPD except one late diagonal entry destroyed.
        let mut a = spd_diag_dominant(12, 7);
        a.set(9, 9, -5.0);
        let mut t = TileMatrix::from_dense(&a, 4).unwrap();
        let err = potrf_tiled(&mut t).unwrap_err();
        match err {
            MatrixError::NotPositiveDefinite { pivot, .. } => assert_eq!(pivot, 9),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
