//! Naive (unblocked) level-3 kernels: the seed implementations, kept as the
//! small-size fallback of the blocked engine and as the baseline the
//! benchmarks and property tests compare against.
//!
//! Loop order is chosen per transposition so the innermost loop always runs
//! down a stored column (unit stride in column-major storage).

use crate::level1::{axpy, dot};
use hchol_matrix::{Matrix, Scalar, Trans, Uplo};

/// Naive `C := alpha * op(A) * op(B) + beta * C` (axpy/dot column loops).
///
/// Same contract as [`crate::gemm`]; exposed so benchmarks can measure the
/// blocked engine against the original kernel.
pub fn naive_gemm<S: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix<S>,
    b: &Matrix<S>,
    beta: f64,
    c: &mut Matrix<S>,
) {
    let (m, ka) = trans_a.apply(a.shape());
    let (kb, n) = trans_b.apply(b.shape());
    assert_eq!(ka, kb, "gemm inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm output shape mismatch");
    let k = ka;

    super::gemm::apply_beta(beta, c.as_mut_slice());
    if alpha == 0.0 || k == 0 {
        return;
    }
    naive_gemm_accum(trans_a, trans_b, alpha, a, b, c);
}

/// The accumulation half of [`naive_gemm`] (`C += alpha * op(A) * op(B)`),
/// assuming shapes already validated and beta already applied.
pub(crate) fn naive_gemm_accum<S: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix<S>,
    b: &Matrix<S>,
    c: &mut Matrix<S>,
) {
    let (m, k) = trans_a.apply(a.shape());
    let n = c.cols();
    let al = S::from_f64(alpha);
    match (trans_a, trans_b) {
        // C[:,j] += alpha * Σ_l A[:,l] * B[l,j] — pure axpy form.
        (Trans::No, Trans::No) => {
            for j in 0..n {
                let bcol = b.col(j);
                let ccol = c.col_mut(j);
                for (l, &blj) in bcol.iter().enumerate() {
                    axpy(al * blj, a.col(l), ccol);
                }
            }
        }
        // B used transposed: B[l,j] = Bᵀ stored as b[j,l].
        (Trans::No, Trans::Yes) => {
            for j in 0..n {
                let ccol = c.col_mut(j);
                for l in 0..k {
                    axpy(al * b.get(j, l), a.col(l), ccol);
                }
            }
        }
        // A used transposed: C[i,j] += alpha * dot(A[:,i], B[:,j]).
        (Trans::Yes, Trans::No) => {
            for j in 0..n {
                let bcol = b.col(j);
                for i in 0..m {
                    let s = dot(a.col(i), bcol);
                    let v = c.get(i, j) + al * s;
                    c.set(i, j, v);
                }
            }
        }
        // Both transposed: C[i,j] += alpha * Σ_l a[l,i] * b[j,l].
        (Trans::Yes, Trans::Yes) => {
            for j in 0..n {
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = S::ZERO;
                    for (l, &ali) in acol.iter().enumerate() {
                        s += ali * b.get(j, l);
                    }
                    let v = c.get(i, j) + al * s;
                    c.set(i, j, v);
                }
            }
        }
    }
}

/// Naive `C := alpha * op(A) * op(A)ᵀ + beta * C` on the `uplo` triangle.
///
/// Same contract as [`crate::syrk`]; the blocked engine's small-size
/// fallback and the benchmark baseline.
pub fn naive_syrk<S: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: f64,
    a: &Matrix<S>,
    beta: f64,
    c: &mut Matrix<S>,
) {
    let (n, k) = trans.apply(a.shape());
    assert!(c.is_square(), "syrk C must be square");
    assert_eq!(c.rows(), n, "syrk C dimension mismatch");

    super::syrk::apply_beta_triangle(uplo, beta, c);
    if alpha == 0.0 || k == 0 {
        return;
    }
    naive_syrk_accum(uplo, trans, alpha, a, c);
}

/// The accumulation half of [`naive_syrk`], beta already applied.
pub(crate) fn naive_syrk_accum<S: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: f64,
    a: &Matrix<S>,
    c: &mut Matrix<S>,
) {
    let (n, k) = trans.apply(a.shape());
    let al = S::from_f64(alpha);
    match trans {
        // C[i,j] += alpha * Σ_l A[i,l]·A[j,l]: axpy down each column segment.
        Trans::No => {
            for j in 0..n {
                for l in 0..k {
                    let ajl = a.get(j, l);
                    if ajl == S::ZERO {
                        continue;
                    }
                    let acol = a.col(l);
                    match uplo {
                        Uplo::Lower => {
                            let ccol = &mut c.col_mut(j)[j..];
                            axpy(al * ajl, &acol[j..], ccol);
                        }
                        Uplo::Upper => {
                            let ccol = &mut c.col_mut(j)[..=j];
                            axpy(al * ajl, &acol[..=j], ccol);
                        }
                    }
                }
            }
        }
        // op(A) = Aᵀ: C[i,j] += alpha * dot(A[:,i], A[:,j]).
        Trans::Yes => {
            for j in 0..n {
                let (lo, hi) = match uplo {
                    Uplo::Lower => (j, n),
                    Uplo::Upper => (0, j + 1),
                };
                let acj = a.col(j);
                for i in lo..hi {
                    let s = dot(a.col(i), acj);
                    let v = c.get(i, j) + al * s;
                    c.set(i, j, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ref_gemm;
    use hchol_matrix::approx_eq;
    use hchol_matrix::generate::uniform;

    #[test]
    fn naive_gemm_matches_reference() {
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let a_shape = ta.apply((6, 4));
            let b_shape = tb.apply((4, 5));
            let a = uniform(a_shape.0, a_shape.1, -1.0, 1.0, 61);
            let b = uniform(b_shape.0, b_shape.1, -1.0, 1.0, 62);
            let mut c = uniform(6, 5, -1.0, 1.0, 63);
            let mut c_ref = c.clone();
            naive_gemm(ta, tb, 1.1, &a, &b, -0.7, &mut c);
            ref_gemm(ta, tb, 1.1, &a, &b, -0.7, &mut c_ref);
            assert!(approx_eq(&c, &c_ref, 1e-13), "ta={ta:?} tb={tb:?}");
        }
    }
}
