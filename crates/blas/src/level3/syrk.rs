//! Symmetric rank-k update, blocked over the referenced triangle.
//!
//! Large updates are decomposed into `TB × TB` blocks of `C`: off-diagonal
//! blocks are plain GEMMs (`C_ij += alpha · op(A)_i · op(A)ᵀ_j`) routed
//! through the blocked engine, while diagonal blocks are computed full into a
//! small scratch tile and added back triangle-masked, so elements outside the
//! `uplo` triangle are never touched. Small updates keep the seed loops in
//! [`super::naive`].

use super::gemm::{encode_cols, gemm_views, use_blocked};
use super::naive::naive_syrk_accum;
use super::pack::{MatMut, MatRef};
use crate::cast::{as_f64, as_f64_mut};
use hchol_matrix::{Matrix, Scalar, Trans, Uplo};

/// Block size of the triangular decomposition (C blocks are `TB × TB`).
/// Wide blocks amortize the engine's packing across many columns of `C`;
/// the wasted flops on diagonal blocks (computed full, added back masked)
/// stay bounded by `TB / 2n` of the total.
const TB: usize = 256;

/// `C := beta·C` restricted to the `uplo` triangle, with BLAS semantics
/// (`beta == 0` overwrites NaN/Inf). Shared between the naive and blocked
/// SYRK front ends.
pub(crate) fn apply_beta_triangle<S: Scalar>(uplo: Uplo, beta: f64, c: &mut Matrix<S>) {
    if beta == 1.0 {
        return;
    }
    let n = c.rows();
    let be = S::from_f64(beta);
    for j in 0..n {
        let seg = match uplo {
            Uplo::Lower => &mut c.col_mut(j)[j..],
            Uplo::Upper => &mut c.col_mut(j)[..=j],
        };
        if beta == 0.0 {
            seg.fill(S::ZERO);
        } else {
            for x in seg {
                *x *= be;
            }
        }
    }
}

/// `C := alpha * op(A) * op(A)ᵀ + beta * C`, updating only the `uplo`
/// triangle of the square matrix `C`.
///
/// With `trans = No`, `op(A) = A` (`n × k`); with `trans = Yes`,
/// `op(A) = Aᵀ` (so `A` is stored `k × n`). This is the diagonal-block
/// update of MAGMA's Cholesky iteration: `A[j,j] -= A[j,0:j-1] · A[j,0:j-1]ᵀ`.
pub fn syrk<S: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: f64,
    a: &Matrix<S>,
    beta: f64,
    c: &mut Matrix<S>,
) {
    let (n, k) = trans.apply(a.shape());
    assert!(c.is_square(), "syrk C must be square");
    assert_eq!(c.rows(), n, "syrk C dimension mismatch");

    apply_beta_triangle(uplo, beta, c);
    if alpha == 0.0 || k == 0 {
        return;
    }

    // Blocked decomposition rides the f64-only packed engine; f32 keeps the
    // seed loops at any size.
    if use_blocked(n, n, k) {
        if let Some(a64) = as_f64(a) {
            let c64 = as_f64_mut(c).expect("a and c share one element type");
            syrk_blocked(uplo, trans, alpha, a64, c64);
            return;
        }
    }
    naive_syrk_accum(uplo, trans, alpha, a, c);
}

/// [`syrk`] plus the two weighted column checksums of the finished `C` in
/// `chk` (a `2 × n` matrix, same layout as
/// [`super::gemm::gemm_fused`]).
///
/// Unlike the GEMM epilogue, the checksum pass here runs as one masked
/// sweep over `C` *after* the blocked loops: SYRK's triangle-masked stores
/// never visit the opposite triangle, yet the checksum must cover the whole
/// stored tile (the verifier re-encodes full tiles), so an in-loop
/// read-back would be incomplete by construction. The sweep touches a tile
/// that just finished updating — cache-hot, and still one kernel from the
/// caller's point of view.
pub fn syrk_fused<S: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: f64,
    a: &Matrix<S>,
    beta: f64,
    c: &mut Matrix<S>,
    chk: &mut Matrix<S>,
) {
    assert_eq!(
        chk.shape(),
        (2, c.cols()),
        "syrk_fused checksum shape mismatch"
    );
    syrk(uplo, trans, alpha, a, beta, c);
    encode_cols(c, chk);
}

/// Blocked accumulation `C += alpha · op(A)·op(A)ᵀ` over the `uplo` triangle.
fn syrk_blocked(uplo: Uplo, trans: Trans, alpha: f64, a: &Matrix, c: &mut Matrix) {
    let (n, k) = trans.apply(a.shape());
    let flip = match trans {
        Trans::No => Trans::Yes,
        Trans::Yes => Trans::No,
    };
    let av = MatRef::new(a, trans); // op(A):  n × k
    let avt = MatRef::new(a, flip); // op(A)ᵀ: k × n
    let cv = MatMut::new(c);
    let mut scratch = vec![0.0; TB * TB];

    for jb in (0..n).step_by(TB) {
        let nb = TB.min(n - jb);
        let bt = avt.sub(0, jb, k, nb);
        // Off-diagonal block rows of this block column.
        let (lo, hi) = match uplo {
            Uplo::Lower => (jb + nb, n),
            Uplo::Upper => (0, jb),
        };
        let mut ib = lo;
        while ib < hi {
            let mb = TB.min(hi - ib);
            gemm_views(alpha, &av.sub(ib, 0, mb, k), &bt, &cv.sub(ib, jb, mb, nb));
            ib += mb;
        }
        // Diagonal block: full product into scratch, triangle-masked add.
        scratch[..nb * nb].fill(0.0);
        let sv = MatMut::from_raw(scratch.as_mut_ptr(), nb, nb, nb);
        gemm_views(alpha, &av.sub(jb, 0, nb, k), &bt, &sv);
        for j in 0..nb {
            let range = match uplo {
                Uplo::Lower => j..nb,
                Uplo::Upper => 0..j + 1,
            };
            for i in range {
                // SAFETY: (jb+i, jb+j) is inside C; `cv` is the sole accessor
                // of C in this function.
                unsafe { cv.add(jb + i, jb + j, scratch[i + j * nb]) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level3::gemm_into;
    use hchol_matrix::generate::uniform;
    use hchol_matrix::Matrix;

    fn full_aat(a: &Matrix, trans: Trans) -> Matrix {
        match trans {
            Trans::No => gemm_into(Trans::No, Trans::Yes, a, a),
            Trans::Yes => gemm_into(Trans::Yes, Trans::No, a, a),
        }
    }

    #[test]
    fn lower_matches_gemm() {
        let a = uniform(5, 3, -1.0, 1.0, 9);
        let mut c = Matrix::zeros(5, 5);
        syrk(Uplo::Lower, Trans::No, 1.0, &a, 0.0, &mut c);
        let want = full_aat(&a, Trans::No);
        for j in 0..5 {
            for i in j..5 {
                assert!((c.get(i, j) - want.get(i, j)).abs() < 1e-13);
            }
            for i in 0..j {
                assert_eq!(c.get(i, j), 0.0, "upper triangle must be untouched");
            }
        }
    }

    #[test]
    fn upper_trans_matches_gemm() {
        let a = uniform(3, 4, -1.0, 1.0, 10); // op(A) = Aᵀ is 4x3
        let mut c = uniform(4, 4, -1.0, 1.0, 11);
        let c0 = c.clone();
        syrk(Uplo::Upper, Trans::Yes, 2.0, &a, 0.5, &mut c);
        let want = full_aat(&a, Trans::Yes);
        for j in 0..4 {
            for i in 0..=j {
                let expect = 2.0 * want.get(i, j) + 0.5 * c0.get(i, j);
                assert!((c.get(i, j) - expect).abs() < 1e-13);
            }
            for i in (j + 1)..4 {
                assert_eq!(c.get(i, j), c0.get(i, j), "lower must be untouched");
            }
        }
    }

    #[test]
    fn beta_zero_clears_triangle_only() {
        let a = Matrix::zeros(3, 2);
        let mut c = Matrix::filled(3, 3, 7.0);
        syrk(Uplo::Lower, Trans::No, 1.0, &a, 0.0, &mut c);
        assert_eq!(c.get(2, 0), 0.0);
        assert_eq!(c.get(0, 2), 7.0);
    }

    #[test]
    fn result_diagonal_nonnegative_for_alpha_positive() {
        let a = uniform(6, 4, -2.0, 2.0, 12);
        let mut c = Matrix::zeros(6, 6);
        syrk(Uplo::Lower, Trans::No, 1.0, &a, 0.0, &mut c);
        for i in 0..6 {
            assert!(c.get(i, i) >= 0.0);
        }
    }

    #[test]
    fn fused_matches_syrk_and_checksums() {
        use super::super::gemm::tests::assert_chk_close;
        let n = TB + 37; // crosses a TB boundary; blocked path
        let k = 128;
        for trans in [Trans::No, Trans::Yes] {
            let (sr, sc) = trans.apply((n, k));
            let a = uniform(sr, sc, -1.0, 1.0, 95);
            for uplo in [Uplo::Lower, Uplo::Upper] {
                let mut c = uniform(n, n, -1.0, 1.0, 96);
                let mut c_ref = c.clone();
                let mut chk = Matrix::zeros(2, n);
                syrk_fused(uplo, trans, -1.0, &a, 1.0, &mut c, &mut chk);
                syrk(uplo, trans, -1.0, &a, 1.0, &mut c_ref);
                // Identical update — the checksum sweep only reads — and
                // checksums cover the whole stored tile, untouched
                // triangle included.
                for j in 0..n {
                    for i in 0..n {
                        assert_eq!(c.get(i, j), c_ref.get(i, j));
                    }
                }
                assert_chk_close(&chk, &c, "syrk_fused");
            }
        }
    }

    #[test]
    fn blocked_path_matches_naive() {
        use super::super::naive::naive_syrk;
        // Odd size spanning several TB blocks, both uplos and transposes.
        let n = 2 * TB + 13;
        let k = 96;
        for trans in [Trans::No, Trans::Yes] {
            let (sr, sc) = trans.apply((n, k));
            let a = uniform(sr, sc, -1.0, 1.0, 90);
            for uplo in [Uplo::Lower, Uplo::Upper] {
                let mut c = uniform(n, n, -1.0, 1.0, 91);
                let mut c_ref = c.clone();
                syrk(uplo, trans, 1.3, &a, -0.4, &mut c);
                naive_syrk(uplo, trans, 1.3, &a, -0.4, &mut c_ref);
                for j in 0..n {
                    for i in 0..n {
                        let d = (c.get(i, j) - c_ref.get(i, j)).abs();
                        assert!(d < 1e-11, "uplo={uplo:?} trans={trans:?} ({i},{j})");
                    }
                }
            }
        }
    }
}
