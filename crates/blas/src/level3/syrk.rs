//! Symmetric rank-k update.

use crate::level1::{axpy, dot};
use hchol_matrix::{Matrix, Trans, Uplo};

/// `C := alpha * op(A) * op(A)ᵀ + beta * C`, updating only the `uplo`
/// triangle of the square matrix `C`.
///
/// With `trans = No`, `op(A) = A` (`n × k`); with `trans = Yes`,
/// `op(A) = Aᵀ` (so `A` is stored `k × n`). This is the diagonal-block
/// update of MAGMA's Cholesky iteration: `A[j,j] -= A[j,0:j-1] · A[j,0:j-1]ᵀ`.
pub fn syrk(uplo: Uplo, trans: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    let (n, k) = trans.apply(a.shape());
    assert!(c.is_square(), "syrk C must be square");
    assert_eq!(c.rows(), n, "syrk C dimension mismatch");

    // Scale the referenced triangle.
    if beta != 1.0 {
        for j in 0..n {
            let (lo, hi) = match uplo {
                Uplo::Lower => (j, n),
                Uplo::Upper => (0, j + 1),
            };
            for i in lo..hi {
                let v = if beta == 0.0 { 0.0 } else { beta * c.get(i, j) };
                c.set(i, j, v);
            }
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }

    match trans {
        // C[i,j] += alpha * Σ_l A[i,l]·A[j,l]: axpy down each column segment.
        Trans::No => {
            for j in 0..n {
                for l in 0..k {
                    let ajl = a.get(j, l);
                    if ajl == 0.0 {
                        continue;
                    }
                    let acol = a.col(l);
                    match uplo {
                        Uplo::Lower => {
                            let ccol = &mut c.col_mut(j)[j..];
                            axpy(alpha * ajl, &acol[j..], ccol);
                        }
                        Uplo::Upper => {
                            let ccol = &mut c.col_mut(j)[..=j];
                            axpy(alpha * ajl, &acol[..=j], ccol);
                        }
                    }
                }
            }
        }
        // op(A) = Aᵀ: C[i,j] += alpha * dot(A[:,i], A[:,j]).
        Trans::Yes => {
            for j in 0..n {
                let (lo, hi) = match uplo {
                    Uplo::Lower => (j, n),
                    Uplo::Upper => (0, j + 1),
                };
                let acj = a.col(j);
                for i in lo..hi {
                    let s = dot(a.col(i), acj);
                    let v = c.get(i, j) + alpha * s;
                    c.set(i, j, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level3::gemm_into;
    use hchol_matrix::generate::uniform;
    use hchol_matrix::Matrix;

    fn full_aat(a: &Matrix, trans: Trans) -> Matrix {
        match trans {
            Trans::No => gemm_into(Trans::No, Trans::Yes, a, a),
            Trans::Yes => gemm_into(Trans::Yes, Trans::No, a, a),
        }
    }

    #[test]
    fn lower_matches_gemm() {
        let a = uniform(5, 3, -1.0, 1.0, 9);
        let mut c = Matrix::zeros(5, 5);
        syrk(Uplo::Lower, Trans::No, 1.0, &a, 0.0, &mut c);
        let want = full_aat(&a, Trans::No);
        for j in 0..5 {
            for i in j..5 {
                assert!((c.get(i, j) - want.get(i, j)).abs() < 1e-13);
            }
            for i in 0..j {
                assert_eq!(c.get(i, j), 0.0, "upper triangle must be untouched");
            }
        }
    }

    #[test]
    fn upper_trans_matches_gemm() {
        let a = uniform(3, 4, -1.0, 1.0, 10); // op(A) = Aᵀ is 4x3
        let mut c = uniform(4, 4, -1.0, 1.0, 11);
        let c0 = c.clone();
        syrk(Uplo::Upper, Trans::Yes, 2.0, &a, 0.5, &mut c);
        let want = full_aat(&a, Trans::Yes);
        for j in 0..4 {
            for i in 0..=j {
                let expect = 2.0 * want.get(i, j) + 0.5 * c0.get(i, j);
                assert!((c.get(i, j) - expect).abs() < 1e-13);
            }
            for i in (j + 1)..4 {
                assert_eq!(c.get(i, j), c0.get(i, j), "lower must be untouched");
            }
        }
    }

    #[test]
    fn beta_zero_clears_triangle_only() {
        let a = Matrix::zeros(3, 2);
        let mut c = Matrix::filled(3, 3, 7.0);
        syrk(Uplo::Lower, Trans::No, 1.0, &a, 0.0, &mut c);
        assert_eq!(c.get(2, 0), 0.0);
        assert_eq!(c.get(0, 2), 7.0);
    }

    #[test]
    fn result_diagonal_nonnegative_for_alpha_positive() {
        let a = uniform(6, 4, -2.0, 2.0, 12);
        let mut c = Matrix::zeros(6, 6);
        syrk(Uplo::Lower, Trans::No, 1.0, &a, 0.0, &mut c);
        for i in 0..6 {
            assert!(c.get(i, i) >= 0.0);
        }
    }
}
