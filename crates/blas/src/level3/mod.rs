//! BLAS level-3: matrix-matrix kernels.
//!
//! These are the operations MAGMA's hybrid Cholesky keeps on the GPU (SYRK,
//! GEMM, TRSM); here they run inside the simulated device. All kernels work
//! on whole [`hchol_matrix::Matrix`] operands — the tile layout of
//! `hchol-matrix` supplies the disjointness that BLAS expresses through
//! pointer/leading-dimension arithmetic.

mod gemm;
mod syrk;
mod trsm;

pub use gemm::{gemm, gemm_into};
pub use syrk::syrk;
pub use trsm::trsm;
