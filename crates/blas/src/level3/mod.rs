//! BLAS level-3: matrix-matrix kernels.
//!
//! These are the operations MAGMA's hybrid Cholesky keeps on the GPU (SYRK,
//! GEMM, TRSM); here they run inside the simulated device. All kernels work
//! on whole [`hchol_matrix::Matrix`] operands — the tile layout of
//! `hchol-matrix` supplies the disjointness that BLAS expresses through
//! pointer/leading-dimension arithmetic.
//!
//! Two implementations coexist:
//! * the **blocked engine** ([`microkernel`]/`pack` plus the macro-loops in
//!   `gemm`), a BLIS-style cache-blocked path that packs operands and runs a
//!   register-tiled micro-kernel — used automatically above a size threshold;
//! * the **naive kernels** ([`naive_gemm`], [`naive_syrk`]), the seed
//!   column-loop implementations, kept as the small-size fallback and as the
//!   baseline for benchmarks and property tests.

mod gemm;
pub mod microkernel;
mod naive;
mod pack;
mod syrk;
mod trsm;

pub use gemm::{gemm, gemm_fused, gemm_into, BLOCK_THRESHOLD, KC, MC, NC};
pub use naive::{naive_gemm, naive_syrk};
pub use syrk::{syrk, syrk_fused};
pub use trsm::trsm;

#[cfg(feature = "parallel")]
pub(crate) use gemm::{apply_beta, run_tiles, use_blocked, ChkAcc};
#[cfg(feature = "parallel")]
pub(crate) use pack::{pack_a, pack_b, MatMut, MatRef};
