//! Triangular solve with multiple right-hand sides.

use crate::level1::axpy;
use crate::level2::trsv;
use hchol_matrix::{Diag, Matrix, Side, Trans, Uplo};

/// Solve `op(A) · X = alpha · B` (`side = Left`) or `X · op(A) = alpha · B`
/// (`side = Right`) for `X`, overwriting `B`.
///
/// `A` is triangular per `uplo`/`diag`; only that triangle is referenced.
/// The panel solve of MAGMA's Cholesky — `A[j+1:N, j] := A[j+1:N, j] ·
/// (L[j,j]ᵀ)⁻¹` — is `trsm(Right, Lower, Trans::Yes, NonUnit, 1.0, L, panel)`.
pub fn trsm(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: f64,
    a: &Matrix,
    b: &mut Matrix,
) {
    assert!(a.is_square(), "trsm A must be square");
    let (m, n) = b.shape();
    match side {
        Side::Left => assert_eq!(a.rows(), m, "trsm Left dimension mismatch"),
        Side::Right => assert_eq!(a.rows(), n, "trsm Right dimension mismatch"),
    }
    if alpha != 1.0 {
        b.scale(alpha);
    }
    if m == 0 || n == 0 {
        return;
    }

    match side {
        // Each column of B is an independent triangular system.
        Side::Left => {
            for j in 0..n {
                trsv(uplo, trans, diag, a, b.col_mut(j));
            }
        }
        Side::Right => right_solve(uplo, trans, diag, a, b),
    }
}

/// Column-oriented algorithms for `X · op(A) = B`.
fn right_solve(uplo: Uplo, trans: Trans, diag: Diag, a: &Matrix, b: &mut Matrix) {
    let n = b.cols();
    // Effective upper/lower structure of op(A):
    //   (Lower, No)  -> lower: X[:,j] depends on X[:,k], k > j  (backward)
    //   (Lower, Yes) -> upper: depends on k < j                (forward)
    //   (Upper, No)  -> upper: forward
    //   (Upper, Yes) -> lower: backward
    // op(A)[k, j] = A[k, j] untransposed, A[j, k] transposed.
    let forward = matches!(
        (uplo, trans),
        (Uplo::Lower, Trans::Yes) | (Uplo::Upper, Trans::No)
    );
    let order: Vec<usize> = if forward {
        (0..n).collect()
    } else {
        (0..n).rev().collect()
    };
    for &j in &order {
        // Eliminate contributions from already-solved columns k.
        let ks: Vec<usize> = if forward {
            (0..j).collect()
        } else {
            ((j + 1)..n).collect()
        };
        for k in ks {
            let coef = match trans {
                Trans::No => a.get(k, j),
                Trans::Yes => a.get(j, k),
            };
            if coef != 0.0 {
                let (src, dst) = b.col_pair_mut(k, j);
                axpy(-coef, src, dst);
            }
        }
        if diag == Diag::NonUnit {
            let d = a.get(j, j);
            let col = b.col_mut(j);
            let inv = 1.0 / d;
            for x in col {
                *x *= inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level3::{gemm, gemm_into};
    use hchol_matrix::generate::uniform;
    use hchol_matrix::{approx_eq, Matrix};

    /// Build a well-conditioned triangular matrix.
    fn tri(n: usize, uplo: Uplo, seed: u64) -> Matrix {
        let mut a = uniform(n, n, -0.5, 0.5, seed);
        for j in 0..n {
            for i in 0..n {
                let zero = match uplo {
                    Uplo::Lower => i < j,
                    Uplo::Upper => i > j,
                };
                if zero {
                    a.set(i, j, 0.0);
                }
            }
            a.set(j, j, 2.0 + j as f64 * 0.1);
        }
        a
    }

    /// Check `op(A)·X = alpha·B` or `X·op(A) = alpha·B` by reconstruction.
    fn check(side: Side, uplo: Uplo, trans: Trans, diag: Diag) {
        let (m, n) = (4, 5);
        let asize = match side {
            Side::Left => m,
            Side::Right => n,
        };
        let mut a = tri(asize, uplo, 21);
        if diag == Diag::Unit {
            for j in 0..asize {
                a.set(j, j, f64::NAN); // must never be referenced
            }
        }
        let b0 = uniform(m, n, -1.0, 1.0, 22);
        let mut x = b0.clone();
        let alpha = 1.5;
        trsm(side, uplo, trans, diag, alpha, &a, &mut x);

        // Rebuild an explicit dense op(A) honoring Diag.
        let mut ad = a.clone();
        for j in 0..asize {
            if diag == Diag::Unit {
                ad.set(j, j, 1.0);
            }
        }
        let opa = match trans {
            Trans::No => ad.clone(),
            Trans::Yes => ad.transpose(),
        };
        let recon = match side {
            Side::Left => gemm_into(Trans::No, Trans::No, &opa, &x),
            Side::Right => gemm_into(Trans::No, Trans::No, &x, &opa),
        };
        let mut want = b0.clone();
        want.scale(alpha);
        assert!(
            approx_eq(&recon, &want, 1e-12),
            "side={side:?} uplo={uplo:?} trans={trans:?} diag={diag:?}"
        );
    }

    #[test]
    fn all_combinations_reconstruct() {
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                for trans in [Trans::No, Trans::Yes] {
                    for diag in [Diag::NonUnit, Diag::Unit] {
                        check(side, uplo, trans, diag);
                    }
                }
            }
        }
    }

    #[test]
    fn magma_panel_solve_shape() {
        // The exact call the Cholesky driver makes: panel (m x nb) times
        // inverse transpose of the factorized diagonal block (nb x nb).
        let nb = 3;
        let l = tri(nb, Uplo::Lower, 30);
        let panel0 = uniform(6, nb, -1.0, 1.0, 31);
        let mut panel = panel0.clone();
        trsm(
            Side::Right,
            Uplo::Lower,
            Trans::Yes,
            Diag::NonUnit,
            1.0,
            &l,
            &mut panel,
        );
        // panel * Lᵀ must reproduce panel0
        let lt = l.transpose();
        let mut recon = Matrix::zeros(6, nb);
        gemm(Trans::No, Trans::No, 1.0, &panel, &lt, 0.0, &mut recon);
        assert!(approx_eq(&recon, &panel0, 1e-12));
    }

    #[test]
    fn empty_rhs_is_noop() {
        let a = tri(3, Uplo::Lower, 40);
        let mut b = Matrix::zeros(0, 3);
        trsm(
            Side::Right,
            Uplo::Lower,
            Trans::Yes,
            Diag::NonUnit,
            1.0,
            &a,
            &mut b,
        );
        assert_eq!(b.shape(), (0, 3));
    }
}
