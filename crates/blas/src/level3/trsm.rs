//! Triangular solve with multiple right-hand sides.
//!
//! Solves with a triangle larger than [`TRSM_BASE`] recurse by halving the
//! triangle: solve with one diagonal sub-triangle, eliminate its contribution
//! from the remaining right-hand side with a rank update (`GEMM`, routed
//! through the blocked engine when large), then solve with the other
//! sub-triangle. The recursion bottoms out on a materialized
//! `TRSM_BASE × TRSM_BASE` triangle solved column-by-column, so the bulk of
//! the flops of a large solve run at GEMM speed. Small solves keep the seed
//! per-column substitution directly.

use crate::cast::{as_f64, as_f64_mut};
use crate::level1::axpy;
use crate::level2::trsv;
use hchol_matrix::{Diag, Matrix, Scalar, Side, Trans, Uplo};

use super::gemm::gemm_views;
use super::pack::{MatMut, MatRef};

/// Triangle size at (or below) which solves run unblocked.
const TRSM_BASE: usize = 32;

/// Solve `op(A) · X = alpha · B` (`side = Left`) or `X · op(A) = alpha · B`
/// (`side = Right`) for `X`, overwriting `B`.
///
/// `A` is triangular per `uplo`/`diag`; only that triangle is referenced.
/// The panel solve of MAGMA's Cholesky — `A[j+1:N, j] := A[j+1:N, j] ·
/// (L[j,j]ᵀ)⁻¹` — is `trsm(Right, Lower, Trans::Yes, NonUnit, 1.0, L, panel)`.
pub fn trsm<S: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: f64,
    a: &Matrix<S>,
    b: &mut Matrix<S>,
) {
    assert!(a.is_square(), "trsm A must be square");
    let (m, n) = b.shape();
    match side {
        Side::Left => assert_eq!(a.rows(), m, "trsm Left dimension mismatch"),
        Side::Right => assert_eq!(a.rows(), n, "trsm Right dimension mismatch"),
    }
    if alpha != 1.0 {
        b.scale(S::from_f64(alpha));
    }
    if m == 0 || n == 0 {
        return;
    }

    // The recursive GEMM-accelerated path rides the f64-only engine; small
    // triangles — and every f32 solve — use straight substitution.
    if a.rows() <= TRSM_BASE || as_f64(a).is_none() {
        match side {
            Side::Left => {
                for j in 0..n {
                    trsv(uplo, trans, diag, a, b.col_mut(j));
                }
            }
            Side::Right => right_solve(uplo, trans, diag, a, b),
        }
        return;
    }
    let a = as_f64(a).expect("checked above");
    let b = as_f64_mut(b).expect("a and b share one element type");

    // op(A) is lower triangular either stored lower and used as-is, or
    // stored upper and used transposed.
    let eff_lower = matches!(
        (uplo, trans),
        (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes)
    );
    let av = MatRef::new(a, trans);
    let bv = MatMut::new(b);
    match side {
        Side::Left => left_rec(eff_lower, diag, &av, &bv),
        Side::Right => right_rec(eff_lower, diag, &av, &bv),
    }
}

/// Copy the referenced triangle of the `op(A)` view into a dense matrix
/// (the recursion base solves on contiguous storage).
fn materialize_tri(av: &MatRef<'_>, eff_lower: bool) -> Matrix {
    let nb = av.rows;
    let mut t = Matrix::zeros(nb, nb);
    for j in 0..nb {
        let range = if eff_lower { j..nb } else { 0..j + 1 };
        for i in range {
            t.set(i, j, av.get(i, j));
        }
    }
    t
}

/// Recursive solve `op(A) · X = B` on views; `av` is the effective triangle.
fn left_rec(eff_lower: bool, diag: Diag, av: &MatRef<'_>, b: &MatMut) {
    let m = b.rows;
    if m <= TRSM_BASE {
        let t = materialize_tri(av, eff_lower);
        let eff_uplo = if eff_lower { Uplo::Lower } else { Uplo::Upper };
        for j in 0..b.cols {
            // SAFETY: columns are visited once; `b` is this solve's unique
            // view of the block.
            trsv(eff_uplo, Trans::No, diag, &t, unsafe { b.col_mut(j) });
        }
        return;
    }
    let m1 = m / 2;
    let m2 = m - m1;
    let n = b.cols;
    let a11 = av.sub(0, 0, m1, m1);
    let a22 = av.sub(m1, m1, m2, m2);
    let b1 = b.sub(0, 0, m1, n);
    let b2 = b.sub(m1, 0, m2, n);
    if eff_lower {
        left_rec(eff_lower, diag, &a11, &b1);
        // B2 -= A21 · X1 (reads the rows just solved, writes the rest).
        // SAFETY: b1 rows [0, m1) are disjoint from b2 rows [m1, m).
        let x1 = unsafe { b1.as_ref() };
        gemm_views(-1.0, &av.sub(m1, 0, m2, m1), &x1, &b2);
        left_rec(eff_lower, diag, &a22, &b2);
    } else {
        left_rec(eff_lower, diag, &a22, &b2);
        // B1 -= A12 · X2.
        // SAFETY: row ranges disjoint as above.
        let x2 = unsafe { b2.as_ref() };
        gemm_views(-1.0, &av.sub(0, m1, m1, m2), &x2, &b1);
        left_rec(eff_lower, diag, &a11, &b1);
    }
}

/// Recursive solve `X · op(A) = B` on views.
fn right_rec(eff_lower: bool, diag: Diag, av: &MatRef<'_>, b: &MatMut) {
    let n = b.cols;
    if n <= TRSM_BASE {
        let t = materialize_tri(av, eff_lower);
        right_base(eff_lower, diag, &t, b);
        return;
    }
    let n1 = n / 2;
    let n2 = n - n1;
    let m = b.rows;
    let a11 = av.sub(0, 0, n1, n1);
    let a22 = av.sub(n1, n1, n2, n2);
    let b1 = b.sub(0, 0, m, n1);
    let b2 = b.sub(0, n1, m, n2);
    if eff_lower {
        // X1·A11 + X2·A21 = B1;  X2·A22 = B2  →  X2 first.
        right_rec(eff_lower, diag, &a22, &b2);
        // SAFETY: b2 cols [n1, n) are disjoint from b1 cols [0, n1).
        let x2 = unsafe { b2.as_ref() };
        gemm_views(-1.0, &x2, &av.sub(n1, 0, n2, n1), &b1);
        right_rec(eff_lower, diag, &a11, &b1);
    } else {
        // X1·A11 = B1;  X1·A12 + X2·A22 = B2  →  X1 first.
        right_rec(eff_lower, diag, &a11, &b1);
        // SAFETY: column ranges disjoint as above.
        let x1 = unsafe { b1.as_ref() };
        gemm_views(-1.0, &x1, &av.sub(0, n1, n1, n2), &b2);
        right_rec(eff_lower, diag, &a22, &b2);
    }
}

/// Unblocked `X · T = B` where `T` is a materialized effective triangle.
fn right_base(eff_lower: bool, diag: Diag, t: &Matrix, b: &MatMut) {
    let n = b.cols;
    // Effective-lower T: column j of X depends on columns k > j (backward);
    // effective-upper: on k < j (forward).
    let order: Vec<usize> = if eff_lower {
        (0..n).rev().collect()
    } else {
        (0..n).collect()
    };
    for &j in &order {
        // SAFETY: col j accessed mutably, cols k ≠ j read-only; `b` is this
        // solve's unique view of the block.
        let dst = unsafe { b.col_mut(j) };
        let ks = if eff_lower { (j + 1)..n } else { 0..j };
        for k in ks {
            let coef = t.get(k, j);
            if coef != 0.0 {
                // SAFETY: k ≠ j, so this read-only view of col k cannot
                // alias `dst` (col j) — disjoint columns of the same block.
                let src = unsafe { &*b.col_mut(k) };
                axpy(-coef, src, dst);
            }
        }
        if diag == Diag::NonUnit {
            let inv = 1.0 / t.get(j, j);
            for x in dst.iter_mut() {
                *x *= inv;
            }
        }
    }
}

/// Column-oriented substitution for `X · op(A) = B` on whole small matrices.
fn right_solve<S: Scalar>(uplo: Uplo, trans: Trans, diag: Diag, a: &Matrix<S>, b: &mut Matrix<S>) {
    let n = b.cols();
    // Effective upper/lower structure of op(A):
    //   (Lower, No)  -> lower: X[:,j] depends on X[:,k], k > j  (backward)
    //   (Lower, Yes) -> upper: depends on k < j                (forward)
    //   (Upper, No)  -> upper: forward
    //   (Upper, Yes) -> lower: backward
    // op(A)[k, j] = A[k, j] untransposed, A[j, k] transposed.
    let forward = matches!(
        (uplo, trans),
        (Uplo::Lower, Trans::Yes) | (Uplo::Upper, Trans::No)
    );
    let order: Vec<usize> = if forward {
        (0..n).collect()
    } else {
        (0..n).rev().collect()
    };
    for &j in &order {
        // Eliminate contributions from already-solved columns k.
        let ks: Vec<usize> = if forward {
            (0..j).collect()
        } else {
            ((j + 1)..n).collect()
        };
        for k in ks {
            let coef = match trans {
                Trans::No => a.get(k, j),
                Trans::Yes => a.get(j, k),
            };
            if coef != S::ZERO {
                let (src, dst) = b.col_pair_mut(k, j);
                axpy(-coef, src, dst);
            }
        }
        if diag == Diag::NonUnit {
            let d = a.get(j, j);
            let col = b.col_mut(j);
            let inv = S::ONE / d;
            for x in col {
                *x *= inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level3::{gemm, gemm_into};
    use hchol_matrix::generate::uniform;
    use hchol_matrix::{approx_eq, Matrix};

    /// Build a well-conditioned triangular matrix.
    fn tri(n: usize, uplo: Uplo, seed: u64) -> Matrix {
        let mut a = uniform(n, n, -0.5, 0.5, seed);
        for j in 0..n {
            for i in 0..n {
                let zero = match uplo {
                    Uplo::Lower => i < j,
                    Uplo::Upper => i > j,
                };
                if zero {
                    a.set(i, j, 0.0);
                }
            }
            a.set(j, j, 2.0 + j as f64 * 0.1);
        }
        a
    }

    /// Check `op(A)·X = alpha·B` or `X·op(A) = alpha·B` by reconstruction.
    fn check(side: Side, uplo: Uplo, trans: Trans, diag: Diag, m: usize, n: usize, tol: f64) {
        let asize = match side {
            Side::Left => m,
            Side::Right => n,
        };
        let mut a = tri(asize, uplo, 21);
        if diag == Diag::Unit {
            for j in 0..asize {
                a.set(j, j, f64::NAN); // must never be referenced
            }
        }
        let b0 = uniform(m, n, -1.0, 1.0, 22);
        let mut x = b0.clone();
        let alpha = 1.5;
        trsm(side, uplo, trans, diag, alpha, &a, &mut x);

        // Rebuild an explicit dense op(A) honoring Diag.
        let mut ad = a.clone();
        for j in 0..asize {
            if diag == Diag::Unit {
                ad.set(j, j, 1.0);
            }
        }
        let opa = match trans {
            Trans::No => ad.clone(),
            Trans::Yes => ad.transpose(),
        };
        let recon = match side {
            Side::Left => gemm_into(Trans::No, Trans::No, &opa, &x),
            Side::Right => gemm_into(Trans::No, Trans::No, &x, &opa),
        };
        let mut want = b0.clone();
        want.scale(alpha);
        assert!(
            approx_eq(&recon, &want, tol),
            "side={side:?} uplo={uplo:?} trans={trans:?} diag={diag:?} m={m} n={n}"
        );
    }

    #[test]
    fn all_combinations_reconstruct() {
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                for trans in [Trans::No, Trans::Yes] {
                    for diag in [Diag::NonUnit, Diag::Unit] {
                        check(side, uplo, trans, diag, 4, 5, 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn recursive_path_reconstructs_all_combinations() {
        // Triangle well above TRSM_BASE with an odd size, so the recursion
        // splits unevenly and the rank updates hit the blocked GEMM.
        for side in [Side::Left, Side::Right] {
            let (m, n) = match side {
                Side::Left => (3 * TRSM_BASE + 5, 17),
                Side::Right => (17, 3 * TRSM_BASE + 5),
            };
            for uplo in [Uplo::Lower, Uplo::Upper] {
                for trans in [Trans::No, Trans::Yes] {
                    for diag in [Diag::NonUnit, Diag::Unit] {
                        check(side, uplo, trans, diag, m, n, 1e-10);
                    }
                }
            }
        }
    }

    #[test]
    fn magma_panel_solve_shape() {
        // The exact call the Cholesky driver makes: panel (m x nb) times
        // inverse transpose of the factorized diagonal block (nb x nb).
        let nb = 3;
        let l = tri(nb, Uplo::Lower, 30);
        let panel0 = uniform(6, nb, -1.0, 1.0, 31);
        let mut panel = panel0.clone();
        trsm(
            Side::Right,
            Uplo::Lower,
            Trans::Yes,
            Diag::NonUnit,
            1.0,
            &l,
            &mut panel,
        );
        // panel * Lᵀ must reproduce panel0
        let lt = l.transpose();
        let mut recon = Matrix::zeros(6, nb);
        gemm(Trans::No, Trans::No, 1.0, &panel, &lt, 0.0, &mut recon);
        assert!(approx_eq(&recon, &panel0, 1e-12));
    }

    #[test]
    fn empty_rhs_is_noop() {
        let a = tri(3, Uplo::Lower, 40);
        let mut b = Matrix::zeros(0, 3);
        trsm(
            Side::Right,
            Uplo::Lower,
            Trans::Yes,
            Diag::NonUnit,
            1.0,
            &a,
            &mut b,
        );
        assert_eq!(b.shape(), (0, 3));
    }
}
