//! Operand views and cache-friendly packing for the blocked GEMM engine.
//!
//! The engine never walks the original column-major operands in its inner
//! loop. Instead each `MC×KC` block of `op(A)` is packed into row-panels of
//! [`MR`] rows (`MR` contiguous values per k step) and each `KC×NC` block of
//! `op(B)` into column-panels of [`NR`] columns, so the micro-kernel streams
//! both operands with unit stride regardless of the original transposition —
//! all four `Trans` combinations are resolved here, at pack time. Partial
//! edge panels are zero-padded to full width; the zeros multiply into the
//! accumulator harmlessly and the store step masks them off.

use super::microkernel::{MR, NR};
use hchol_matrix::{Matrix, Trans};

/// Read-only view of `op(M)` for a sub-block of a column-major matrix.
///
/// Logical element `(i, j)` of the view is storage element
/// `(row0 + i, col0 + j)` when `trans` is `No`, `(row0 + j, col0 + i)` when
/// `trans` is `Yes` (offsets are in storage coordinates).
#[derive(Clone, Copy)]
pub(crate) struct MatRef<'a> {
    data: &'a [f64],
    ld: usize,
    row0: usize,
    col0: usize,
    /// Logical rows of op(M).
    pub rows: usize,
    /// Logical cols of op(M).
    pub cols: usize,
    trans: bool,
}

impl<'a> MatRef<'a> {
    /// View of the whole matrix as `op(M)`.
    pub fn new(m: &'a Matrix, trans: Trans) -> Self {
        let (rows, cols) = trans.apply(m.shape());
        MatRef {
            data: m.as_slice(),
            ld: m.rows(),
            row0: 0,
            col0: 0,
            rows,
            cols,
            trans: trans == Trans::Yes,
        }
    }

    /// Sub-view: logical rows `[r0, r0+nrows)`, logical cols `[c0, c0+ncols)`.
    pub fn sub(&self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> Self {
        debug_assert!(r0 + nrows <= self.rows && c0 + ncols <= self.cols);
        let (dr, dc) = if self.trans { (c0, r0) } else { (r0, c0) };
        MatRef {
            data: self.data,
            ld: self.ld,
            row0: self.row0 + dr,
            col0: self.col0 + dc,
            rows: nrows,
            cols: ncols,
            trans: self.trans,
        }
    }

    /// Logical element `(i, j)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (si, sj) = if self.trans { (j, i) } else { (i, j) };
        self.data[self.row0 + si + (self.col0 + sj) * self.ld]
    }
}

/// Mutable view of a sub-block of a column-major matrix.
///
/// Raw-pointer based because the blocked SYRK/TRSM paths need simultaneous
/// disjoint read and write views into one matrix (e.g. TRSM's rank update
/// reads solved rows of `B` while writing unsolved ones), which column-major
/// interleaving puts beyond safe slice splitting. All accesses are bounds-
/// checked against the view in debug builds; callers guarantee disjointness.
#[derive(Clone, Copy)]
pub(crate) struct MatMut {
    ptr: *mut f64,
    ld: usize,
    /// Rows of the block.
    pub rows: usize,
    /// Cols of the block.
    pub cols: usize,
}

impl MatMut {
    /// View of a whole matrix.
    pub fn new(m: &mut Matrix) -> Self {
        let (rows, cols) = m.shape();
        let ld = rows;
        MatMut {
            ptr: m.as_mut_slice().as_mut_ptr(),
            ld,
            rows,
            cols,
        }
    }

    /// View over raw column-major storage (e.g. a scratch buffer) with
    /// leading dimension `ld`. The caller keeps the backing allocation alive
    /// and unaliased for the view's whole use.
    pub fn from_raw(ptr: *mut f64, ld: usize, rows: usize, cols: usize) -> Self {
        debug_assert!(ld >= rows);
        MatMut {
            ptr,
            ld,
            rows,
            cols,
        }
    }

    /// Sub-block `[r0, r0+nrows) × [c0, c0+ncols)` of this block.
    pub fn sub(&self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> Self {
        debug_assert!(r0 + nrows <= self.rows && c0 + ncols <= self.cols);
        MatMut {
            // SAFETY: stays within the parent allocation (checked above).
            ptr: unsafe { self.ptr.add(r0 + c0 * self.ld) },
            ld: self.ld,
            rows: nrows,
            cols: ncols,
        }
    }

    /// Add `v` to element `(i, j)`.
    ///
    /// # Safety
    /// `i < rows && j < cols`, and this view is the unique accessor of the
    /// element.
    #[inline(always)]
    pub unsafe fn add(&self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: caller upholds the bounds/uniqueness contract above.
        unsafe { *self.ptr.add(i + j * self.ld) += v };
    }

    /// Read element `(i, j)` — the fused-epilogue read-back of a value this
    /// same call just stored.
    ///
    /// # Safety
    /// `i < rows && j < cols`, and no other thread writes the element while
    /// it is read.
    #[inline(always)]
    pub unsafe fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: caller upholds the bounds/exclusivity contract above.
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Column `j` as a mutable slice (columns are contiguous).
    ///
    /// # Safety
    /// `j < cols`, and this view is the unique accessor of the column.
    #[inline(always)]
    pub unsafe fn col_mut<'s>(&self, j: usize) -> &'s mut [f64] {
        debug_assert!(j < self.cols);
        // SAFETY: caller upholds the bounds/uniqueness contract above;
        // columns are contiguous (`rows <= ld`).
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(j * self.ld), self.rows) }
    }

    /// Read-only view of this block (for GEMM operands aliasing the output
    /// matrix at disjoint coordinates).
    ///
    /// # Safety
    /// The caller chooses the lifetime and must not write through `self` (or
    /// any overlapping view) while the returned view is read — the blocked
    /// TRSM recursion only reads rows/cols it has finished writing.
    pub unsafe fn as_ref<'s>(&self) -> MatRef<'s> {
        MatRef {
            // SAFETY: the span is within the parent allocation; caller
            // guarantees no overlapping writes for the chosen lifetime.
            data: unsafe { std::slice::from_raw_parts(self.ptr, self.len_spanned()) },
            ld: self.ld,
            row0: 0,
            col0: 0,
            rows: self.rows,
            cols: self.cols,
            trans: false,
        }
    }

    /// Number of elements spanned in the parent allocation (last column ends
    /// at `rows`, earlier columns span `ld`).
    fn len_spanned(&self) -> usize {
        if self.rows == 0 || self.cols == 0 {
            0
        } else {
            (self.cols - 1) * self.ld + self.rows
        }
    }
}

// SAFETY: the engine hands MatMut row-stripes to scoped threads;
// disjointness of the stripes is guaranteed by the ic-loop partitioning in
// par.rs, so no two threads ever touch the same element.
unsafe impl Send for MatMut {}

/// Pack the `mc × kc` block of `op(A)` into MR-row micro-panels.
///
/// Output layout: panel `ip` (rows `ip*MR ..`) occupies
/// `buf[ip*MR*kc .. (ip+1)*MR*kc]`, as `kc` groups of `MR` contiguous row
/// values. Rows past `mc` are zero-filled.
pub(crate) fn pack_a(block: &MatRef<'_>, buf: &mut [f64]) {
    let (mc, kc) = (block.rows, block.cols);
    let panels = mc.div_ceil(MR);
    debug_assert!(buf.len() >= panels * MR * kc);
    for ip in 0..panels {
        let i0 = ip * MR;
        let mr = MR.min(mc - i0);
        let panel = &mut buf[ip * MR * kc..(ip + 1) * MR * kc];
        for p in 0..kc {
            let dst = &mut panel[p * MR..p * MR + MR];
            for (r, d) in dst.iter_mut().enumerate().take(mr) {
                *d = block.get(i0 + r, p);
            }
            for d in dst.iter_mut().skip(mr) {
                *d = 0.0;
            }
        }
    }
}

/// Pack the `kc × nc` block of `op(B)` into NR-column micro-panels.
///
/// Output layout: panel `jp` (cols `jp*NR ..`) occupies
/// `buf[jp*NR*kc .. (jp+1)*NR*kc]`, as `kc` groups of `NR` contiguous column
/// values. Columns past `nc` are zero-filled.
pub(crate) fn pack_b(block: &MatRef<'_>, buf: &mut [f64]) {
    let (kc, nc) = (block.rows, block.cols);
    let panels = nc.div_ceil(NR);
    debug_assert!(buf.len() >= panels * NR * kc);
    for jp in 0..panels {
        let j0 = jp * NR;
        let nr = NR.min(nc - j0);
        let panel = &mut buf[jp * NR * kc..(jp + 1) * NR * kc];
        for p in 0..kc {
            let dst = &mut panel[p * NR..p * NR + NR];
            for (col, d) in dst.iter_mut().enumerate().take(nr) {
                *d = block.get(p, j0 + col);
            }
            for d in dst.iter_mut().skip(nr) {
                *d = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hchol_matrix::generate::uniform;

    #[test]
    fn matref_transposition_and_subviews() {
        let m = uniform(7, 5, -1.0, 1.0, 71);
        let v = MatRef::new(&m, Trans::No);
        assert_eq!((v.rows, v.cols), (7, 5));
        assert_eq!(v.get(3, 2), m.get(3, 2));
        let t = MatRef::new(&m, Trans::Yes);
        assert_eq!((t.rows, t.cols), (5, 7));
        assert_eq!(t.get(2, 3), m.get(3, 2));
        let s = v.sub(2, 1, 4, 3);
        assert_eq!(s.get(0, 0), m.get(2, 1));
        let st = t.sub(1, 2, 3, 4);
        assert_eq!(st.get(0, 0), m.get(2, 1));
        assert_eq!(st.get(2, 3), m.get(5, 3));
    }

    #[test]
    fn pack_a_layout_with_padding() {
        let m = uniform(MR + 3, 4, -1.0, 1.0, 72);
        let v = MatRef::new(&m, Trans::No);
        let kc = v.cols;
        let mut buf = vec![f64::NAN; 2 * MR * kc];
        pack_a(&v, &mut buf);
        // First panel, k step 2, row 5 = element (5, 2).
        assert_eq!(buf[2 * MR + 5], m.get(5, 2));
        // Second panel holds rows MR..MR+3 then zero padding.
        assert_eq!(buf[MR * kc + MR + 1], m.get(MR + 1, 1));
        assert_eq!(buf[MR * kc + MR + 5], 0.0);
    }

    #[test]
    fn pack_b_layout_with_padding() {
        let m = uniform(3, NR + 2, -1.0, 1.0, 73);
        let v = MatRef::new(&m, Trans::No);
        let kc = v.rows;
        let mut buf = vec![f64::NAN; 2 * NR * kc];
        pack_b(&v, &mut buf);
        // First panel, k step 1, col 4 = element (1, 4).
        assert_eq!(buf[NR + 4], m.get(1, 4));
        // Second panel holds cols NR..NR+2 then zero padding.
        assert_eq!(buf[NR * kc + 2 * NR + 1], m.get(2, NR + 1));
        assert_eq!(buf[NR * kc + 2 * NR + 3], 0.0);
    }

    #[test]
    fn matmut_subblock_addressing() {
        let mut m = uniform(6, 6, -1.0, 1.0, 74);
        let before = m.get(4, 3);
        let mm = MatMut::new(&mut m);
        let sub = mm.sub(2, 1, 4, 5);
        // SAFETY: (2,2) is inside the 4×5 sub-view; `sub` is the only
        // accessor of `m` here.
        unsafe {
            sub.add(2, 2, 1.0);
        }
        assert_eq!(m.get(4, 3), before + 1.0);
    }
}
