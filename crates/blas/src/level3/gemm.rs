//! General matrix-matrix multiply: blocked engine + naive fallback.
//!
//! Large products run through a BLIS-style three-level blocked engine:
//!
//! ```text
//! for jc in 0..n step NC              (B column slabs, ~L3)
//!   for pc in 0..k step KC            (k slabs — pack op(B) once, ~L2)
//!     pack B[pc.., jc..] into NR-col micro-panels
//!     for ic in 0..m step MC          (A row slabs — pack op(A), ~L1/L2)
//!       pack A[ic.., pc..] into MR-row micro-panels
//!       for each NR col panel × MR row panel: micro-kernel, masked store
//! ```
//!
//! `beta` is applied to the whole of `C` once, up front; the engine then only
//! ever accumulates `alpha·op(A)·op(B)`. Products below [`BLOCK_THRESHOLD`]
//! fall back to the seed column-loop kernels in [`super::naive`], whose
//! per-call overhead is lower.

use super::microkernel::{micro_kernel, MR, NR};
use super::naive;
use super::pack::{pack_a, pack_b, MatMut, MatRef};
use hchol_matrix::{Matrix, Trans};

/// Rows per packed A slab (fits `MC×KC` doubles comfortably in L2).
pub const MC: usize = 128;
/// Inner (k) extent of one packing pass.
pub const KC: usize = 256;
/// Columns per packed B slab (bounds the shared B panel at ~`KC·NC` doubles).
pub const NC: usize = 2048;

/// Minimum `m·n·k` for the blocked engine; below this the packing overhead
/// outweighs the cache wins and the naive loops are faster.
pub const BLOCK_THRESHOLD: usize = 64 * 64 * 64;

/// `C := beta·C` with BLAS semantics: `beta == 0` overwrites (clearing NaN
/// and Inf), `beta == 1` is a no-op. Shared by the sequential and parallel
/// front ends.
pub(crate) fn apply_beta(beta: f64, c: &mut [f64]) {
    if beta == 1.0 {
        return;
    }
    if beta == 0.0 {
        c.fill(0.0);
    } else {
        for x in c {
            *x *= beta;
        }
    }
}

/// Should this product take the blocked path?
#[inline]
pub(crate) fn use_blocked(m: usize, n: usize, k: usize) -> bool {
    // Few-row / few-column products (e.g. the 2×B checksum recalculation
    // GEMMs) stay on the naive dot/axpy loops: a micro-tile would be mostly
    // padding.
    m >= MR && n >= NR && m.saturating_mul(n).saturating_mul(k) >= BLOCK_THRESHOLD
}

/// `C := alpha * op(A) * op(B) + beta * C`.
///
/// Shapes: `op(A)` is `m × k`, `op(B)` is `k × n`, `C` is `m × n`.
/// Panics on shape mismatch; `A`, `B` and `C` must be distinct matrices
/// (guaranteed by Rust's borrow rules).
pub fn gemm(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, ka) = trans_a.apply(a.shape());
    let (kb, n) = trans_b.apply(b.shape());
    assert_eq!(ka, kb, "gemm inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm output shape mismatch");
    let k = ka;

    apply_beta(beta, c.as_mut_slice());
    if alpha == 0.0 || k == 0 {
        return;
    }

    if use_blocked(m, n, k) {
        let av = MatRef::new(a, trans_a);
        let bv = MatRef::new(b, trans_b);
        let cv = MatMut::new(c);
        gemm_blocked(alpha, &av, &bv, &cv);
    } else {
        naive::naive_gemm_accum(trans_a, trans_b, alpha, a, b, c);
    }
}

/// Convenience: allocate and return `op(A) * op(B)`.
pub fn gemm_into(trans_a: Trans, trans_b: Trans, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, _) = trans_a.apply(a.shape());
    let (_, n) = trans_b.apply(b.shape());
    let mut c = Matrix::zeros(m, n);
    gemm(trans_a, trans_b, 1.0, a, b, 0.0, &mut c);
    c
}

/// View-level `C += alpha·A·B` for the internal SYRK/TRSM callers:
/// dispatches between the blocked engine and a simple loop by size.
///
/// Caller guarantees `c` is disjoint from the storage behind `a`/`b`.
pub(crate) fn gemm_views(alpha: f64, a: &MatRef<'_>, b: &MatRef<'_>, c: &MatMut) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    debug_assert_eq!(b.rows, k);
    debug_assert!(c.rows == m && c.cols == n);
    if alpha == 0.0 || k == 0 {
        return;
    }
    if use_blocked(m, n, k) {
        gemm_blocked(alpha, a, b, c);
    } else {
        gemm_views_small(alpha, a, b, c);
    }
}

/// Unblocked view multiply for blocks too small to be worth packing.
/// j-l-i loop order keeps the inner loop on C's (and untransposed A's)
/// unit stride.
fn gemm_views_small(alpha: f64, a: &MatRef<'_>, b: &MatRef<'_>, c: &MatMut) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    for j in 0..n {
        for l in 0..k {
            let f = alpha * b.get(l, j);
            if f == 0.0 {
                continue;
            }
            for i in 0..m {
                // SAFETY: i < m = c.rows, j < n = c.cols; `c` is the unique
                // accessor of this block (gemm_views contract).
                unsafe { c.add(i, j, f * a.get(i, l)) };
            }
        }
    }
}

/// The three-level macro-loop around the packed micro-kernel.
/// Computes `C += alpha · A·B` (beta is the front ends' job).
pub(crate) fn gemm_blocked(alpha: f64, a: &MatRef<'_>, b: &MatRef<'_>, c: &MatMut) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let mut packed_a = vec![0.0; MC.div_ceil(MR) * MR * KC];
    let mut packed_b = vec![0.0; KC * NC.div_ceil(NR) * NR];

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&b.sub(pc, jc, kc, nc), &mut packed_b);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(&a.sub(ic, pc, mc, kc), &mut packed_a);
                let c_block = c.sub(ic, jc, mc, nc);
                run_tiles(alpha, kc, mc, nc, &packed_a, &packed_b, &c_block);
            }
        }
    }
}

/// Inner two loops: every `MR×NR` micro-tile of one `mc×nc` C block.
/// Exposed to `par.rs`, whose threads share `packed_b` and run disjoint
/// row-stripes.
pub(crate) fn run_tiles(
    alpha: f64,
    kc: usize,
    mc: usize,
    nc: usize,
    packed_a: &[f64],
    packed_b: &[f64],
    c_block: &MatMut,
) {
    for jp in 0..nc.div_ceil(NR) {
        let j0 = jp * NR;
        let nr = NR.min(nc - j0);
        let pb = &packed_b[jp * NR * kc..(jp + 1) * NR * kc];
        for ip in 0..mc.div_ceil(MR) {
            let i0 = ip * MR;
            let mr = MR.min(mc - i0);
            let pa = &packed_a[ip * MR * kc..(ip + 1) * MR * kc];
            let mut acc = [[0.0; MR]; NR];
            micro_kernel(kc, pa, pb, &mut acc);
            // Masked store: edge tiles computed full-width over the packing
            // zeros, written back only where C exists.
            for (j, col) in acc.iter().enumerate().take(nr) {
                for (i, &v) in col.iter().enumerate().take(mr) {
                    // SAFETY: i0+i < mc, j0+j < nc; tiles are disjoint and
                    // the caller hands each stripe to at most one thread.
                    unsafe { c_block.add(i0 + i, j0 + j, alpha * v) };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ref_gemm;
    use hchol_matrix::generate::uniform;
    use hchol_matrix::{approx_eq, Matrix};

    #[test]
    fn small_known_product() {
        let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_row_major(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm_into(Trans::No, Trans::No, &a, &b);
        let want = Matrix::from_row_major(2, 2, &[19.0, 22.0, 43.0, 50.0]).unwrap();
        assert!(approx_eq(&c, &want, 1e-14));
    }

    #[test]
    fn all_transpose_combos_match_reference() {
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            // op(A): 4x3, op(B): 3x5
            let a_shape = ta.apply((4, 3)); // stored shape
            let b_shape = tb.apply((3, 5));
            let a = uniform(a_shape.0, a_shape.1, -1.0, 1.0, 1);
            let b = uniform(b_shape.0, b_shape.1, -1.0, 1.0, 2);
            let mut c = uniform(4, 5, -1.0, 1.0, 3);
            let mut c_ref = c.clone();
            gemm(ta, tb, 1.7, &a, &b, -0.3, &mut c);
            ref_gemm(ta, tb, 1.7, &a, &b, -0.3, &mut c_ref);
            assert!(approx_eq(&c, &c_ref, 1e-12), "ta={ta:?} tb={tb:?}");
        }
    }

    #[test]
    fn blocked_path_matches_reference_all_transposes() {
        // Big enough to force the blocked engine, odd enough to exercise
        // every edge tile (m, n not multiples of MR/NR; k crosses KC).
        let (m, n, k) = (MC + MR + 3, NR * 12 + 5, KC + 7);
        assert!(use_blocked(m, n, k));
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let a_shape = ta.apply((m, k));
            let b_shape = tb.apply((k, n));
            let a = uniform(a_shape.0, a_shape.1, -1.0, 1.0, 11);
            let b = uniform(b_shape.0, b_shape.1, -1.0, 1.0, 12);
            let mut c = uniform(m, n, -1.0, 1.0, 13);
            let mut c_ref = c.clone();
            gemm(ta, tb, -0.8, &a, &b, 0.6, &mut c);
            naive::naive_gemm(ta, tb, -0.8, &a, &b, 0.6, &mut c_ref);
            assert!(approx_eq(&c, &c_ref, 1e-11), "ta={ta:?} tb={tb:?}");
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::filled(2, 2, f64::NAN);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(approx_eq(&c, &Matrix::identity(2), 0.0));
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let a = uniform(3, 3, -1.0, 1.0, 4);
        let b = uniform(3, 3, -1.0, 1.0, 5);
        let mut c = Matrix::filled(3, 3, 2.0);
        gemm(Trans::No, Trans::No, 0.0, &a, &b, 0.5, &mut c);
        assert!(approx_eq(&c, &Matrix::filled(3, 3, 1.0), 0.0));
    }

    #[test]
    fn k_zero_leaves_scaled_c() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::filled(3, 2, 4.0);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.25, &mut c);
        assert!(approx_eq(&c, &Matrix::filled(3, 2, 1.0), 0.0));
    }

    #[test]
    #[should_panic]
    fn inner_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
    }
}
