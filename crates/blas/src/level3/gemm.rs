//! General matrix-matrix multiply: blocked engine + naive fallback.
//!
//! Large products run through a BLIS-style three-level blocked engine:
//!
//! ```text
//! for jc in 0..n step NC              (B column slabs, ~L3)
//!   for pc in 0..k step KC            (k slabs — pack op(B) once, ~L2)
//!     pack B[pc.., jc..] into NR-col micro-panels
//!     for ic in 0..m step MC          (A row slabs — pack op(A), ~L1/L2)
//!       pack A[ic.., pc..] into MR-row micro-panels
//!       for each NR col panel × MR row panel: micro-kernel, masked store
//! ```
//!
//! `beta` is applied to the whole of `C` once, up front; the engine then only
//! ever accumulates `alpha·op(A)·op(B)`. Products below [`BLOCK_THRESHOLD`]
//! fall back to the seed column-loop kernels in [`super::naive`], whose
//! per-call overhead is lower.

use super::microkernel::{micro_kernel, MR, NR};
use super::naive;
use super::pack::{pack_a, pack_b, MatMut, MatRef};
use crate::cast::{as_f64, as_f64_mut};
use hchol_matrix::{Matrix, Scalar, Trans};

/// Rows per packed A slab (fits `MC×KC` doubles comfortably in L2).
pub const MC: usize = 128;
/// Inner (k) extent of one packing pass.
pub const KC: usize = 256;
/// Columns per packed B slab (bounds the shared B panel at ~`KC·NC` doubles).
pub const NC: usize = 2048;

/// Minimum `m·n·k` for the blocked engine; below this the packing overhead
/// outweighs the cache wins and the naive loops are faster.
pub const BLOCK_THRESHOLD: usize = 64 * 64 * 64;

/// `C := beta·C` with BLAS semantics: `beta == 0` overwrites (clearing NaN
/// and Inf), `beta == 1` is a no-op. Shared by the sequential and parallel
/// front ends.
pub(crate) fn apply_beta<S: Scalar>(beta: f64, c: &mut [S]) {
    if beta == 1.0 {
        return;
    }
    if beta == 0.0 {
        c.fill(S::ZERO);
    } else {
        let be = S::from_f64(beta);
        for x in c {
            *x *= be;
        }
    }
}

/// Should this product take the blocked path?
#[inline]
pub(crate) fn use_blocked(m: usize, n: usize, k: usize) -> bool {
    // Few-row / few-column products (e.g. the 2×B checksum recalculation
    // GEMMs) stay on the naive dot/axpy loops: a micro-tile would be mostly
    // padding.
    m >= MR && n >= NR && m.saturating_mul(n).saturating_mul(k) >= BLOCK_THRESHOLD
}

/// `C := alpha * op(A) * op(B) + beta * C`.
///
/// Shapes: `op(A)` is `m × k`, `op(B)` is `k × n`, `C` is `m × n`.
/// Panics on shape mismatch; `A`, `B` and `C` must be distinct matrices
/// (guaranteed by Rust's borrow rules).
pub fn gemm<S: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix<S>,
    b: &Matrix<S>,
    beta: f64,
    c: &mut Matrix<S>,
) {
    let (m, ka) = trans_a.apply(a.shape());
    let (kb, n) = trans_b.apply(b.shape());
    assert_eq!(ka, kb, "gemm inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm output shape mismatch");
    let k = ka;

    apply_beta(beta, c.as_mut_slice());
    if alpha == 0.0 || k == 0 {
        return;
    }

    // The packed SIMD engine is f64-only; other precisions (f32) take the
    // scalar reference loops below regardless of size.
    if use_blocked(m, n, k) {
        if let (Some(a64), Some(b64)) = (as_f64(a), as_f64(b)) {
            let c64 = as_f64_mut(c).expect("a, b, c share one element type");
            let av = MatRef::new(a64, trans_a);
            let bv = MatRef::new(b64, trans_b);
            let cv = MatMut::new(c64);
            gemm_blocked(alpha, &av, &bv, &cv);
            return;
        }
    }
    naive::naive_gemm_accum(trans_a, trans_b, alpha, a, b, c);
}

/// Convenience: allocate and return `op(A) * op(B)`.
pub fn gemm_into<S: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    a: &Matrix<S>,
    b: &Matrix<S>,
) -> Matrix<S> {
    let (m, _) = trans_a.apply(a.shape());
    let (_, n) = trans_b.apply(b.shape());
    let mut c = Matrix::zeros(m, n);
    gemm(trans_a, trans_b, 1.0, a, b, 0.0, &mut c);
    c
}

/// View-level `C += alpha·A·B` for the internal SYRK/TRSM callers:
/// dispatches between the blocked engine and a simple loop by size.
///
/// Caller guarantees `c` is disjoint from the storage behind `a`/`b`.
pub(crate) fn gemm_views(alpha: f64, a: &MatRef<'_>, b: &MatRef<'_>, c: &MatMut) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    debug_assert_eq!(b.rows, k);
    debug_assert!(c.rows == m && c.cols == n);
    if alpha == 0.0 || k == 0 {
        return;
    }
    if use_blocked(m, n, k) {
        gemm_blocked(alpha, a, b, c);
    } else {
        gemm_views_small(alpha, a, b, c);
    }
}

/// Unblocked view multiply for blocks too small to be worth packing.
/// j-l-i loop order keeps the inner loop on C's (and untransposed A's)
/// unit stride.
fn gemm_views_small(alpha: f64, a: &MatRef<'_>, b: &MatRef<'_>, c: &MatMut) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    for j in 0..n {
        for l in 0..k {
            let f = alpha * b.get(l, j);
            if f == 0.0 {
                continue;
            }
            for i in 0..m {
                // SAFETY: i < m = c.rows, j < n = c.cols; `c` is the unique
                // accessor of this block (gemm_views contract).
                unsafe { c.add(i, j, f * a.get(i, l)) };
            }
        }
    }
}

/// The three-level macro-loop around the packed micro-kernel.
/// Computes `C += alpha · A·B` (beta is the front ends' job).
pub(crate) fn gemm_blocked(alpha: f64, a: &MatRef<'_>, b: &MatRef<'_>, c: &MatMut) {
    gemm_blocked_fused(alpha, a, b, c, None);
}

/// Per-call checksum accumulator for the fused epilogue: partial `v₁`
/// (ones-weighted) and `v₂` (row-index-weighted) column sums of the C
/// elements this call stores. In the threaded engine each thread owns one,
/// reduced after the macro-tile join.
pub(crate) struct ChkAcc<'a> {
    /// Global row of `c_block`'s row 0 in the output matrix (sets the
    /// `v₂` weights: global row `i` weighs `i + 1`).
    pub row0: usize,
    /// Global column of `c_block`'s column 0 (offsets into `v1`/`v2`).
    pub col0: usize,
    /// Unweighted column sums, one slot per output column.
    pub v1: &'a mut [f64],
    /// Row-weighted column sums, one slot per output column.
    pub v2: &'a mut [f64],
}

/// [`gemm_blocked`] with an optional fused checksum epilogue.
///
/// When `epi` is set, the final `pc` slab reads every just-stored C element
/// back (still cache-hot from the masked store) and accumulates the two
/// weighted column sums of the *finished* `C` — covering `beta·C` and all
/// earlier k slabs, because each slab accumulates into every element.
pub(crate) fn gemm_blocked_fused(
    alpha: f64,
    a: &MatRef<'_>,
    b: &MatRef<'_>,
    c: &MatMut,
    mut epi: Option<(&mut [f64], &mut [f64])>,
) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let mut packed_a = vec![0.0; MC.div_ceil(MR) * MR * KC];
    let mut packed_b = vec![0.0; KC * NC.div_ceil(NR) * NR];

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let last_slab = pc + kc == k;
            pack_b(&b.sub(pc, jc, kc, nc), &mut packed_b);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(&a.sub(ic, pc, mc, kc), &mut packed_a);
                let c_block = c.sub(ic, jc, mc, nc);
                let mut acc = match &mut epi {
                    Some((v1, v2)) if last_slab => Some(ChkAcc {
                        row0: ic,
                        col0: jc,
                        v1,
                        v2,
                    }),
                    _ => None,
                };
                run_tiles(
                    alpha,
                    kc,
                    mc,
                    nc,
                    &packed_a,
                    &packed_b,
                    &c_block,
                    acc.as_mut(),
                );
            }
        }
    }
}

/// Inner two loops: every `MR×NR` micro-tile of one `mc×nc` C block.
/// Exposed to `par.rs`, whose threads share `packed_b` and run disjoint
/// row-stripes.
///
/// With `epi` set, each micro-tile's store is followed by a read-back of the
/// freshly written elements into the caller's checksum accumulator (columns
/// accumulate in ascending global-row order within this call).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_tiles(
    alpha: f64,
    kc: usize,
    mc: usize,
    nc: usize,
    packed_a: &[f64],
    packed_b: &[f64],
    c_block: &MatMut,
    mut epi: Option<&mut ChkAcc<'_>>,
) {
    for jp in 0..nc.div_ceil(NR) {
        let j0 = jp * NR;
        let nr = NR.min(nc - j0);
        let pb = &packed_b[jp * NR * kc..(jp + 1) * NR * kc];
        for ip in 0..mc.div_ceil(MR) {
            let i0 = ip * MR;
            let mr = MR.min(mc - i0);
            let pa = &packed_a[ip * MR * kc..(ip + 1) * MR * kc];
            let mut acc = [[0.0; MR]; NR];
            micro_kernel(kc, pa, pb, &mut acc);
            // Masked store: edge tiles computed full-width over the packing
            // zeros, written back only where C exists.
            for (j, col) in acc.iter().enumerate().take(nr) {
                for (i, &v) in col.iter().enumerate().take(mr) {
                    // SAFETY: i0+i < mc, j0+j < nc; tiles are disjoint and
                    // the caller hands each stripe to at most one thread.
                    unsafe { c_block.add(i0 + i, j0 + j, alpha * v) };
                }
            }
            if let Some(e) = epi.as_mut() {
                for j in 0..nr {
                    let gc = e.col0 + j0 + j;
                    let (mut s1, mut s2) = (0.0, 0.0);
                    for i in 0..mr {
                        // SAFETY: same bounds as the store above; this call
                        // is the sole accessor of its stripe.
                        let v = unsafe { c_block.get(i0 + i, j0 + j) };
                        s1 += v;
                        s2 += (e.row0 + i0 + i + 1) as f64 * v;
                    }
                    e.v1[gc] += s1;
                    e.v2[gc] += s2;
                }
            }
        }
    }
}

/// Plain second-pass checksum of a finished block: ascending-row column
/// sums into a `2 × cols` matrix (row 0: ones weights, row 1: `i + 1`
/// weights). The fallback epilogue for products the blocked engine skips.
pub(crate) fn encode_cols<S: Scalar>(c: &Matrix<S>, chk: &mut Matrix<S>) {
    debug_assert_eq!(chk.shape(), (2, c.cols()));
    for j in 0..c.cols() {
        let (mut s1, mut s2) = (S::ZERO, S::ZERO);
        for (i, &v) in c.col(j).iter().enumerate() {
            s1 += v;
            s2 += S::from_usize(i + 1) * v;
        }
        chk.set(0, j, s1);
        chk.set(1, j, s2);
    }
}

/// `C := alpha·op(A)·op(B) + beta·C`, simultaneously producing the two
/// weighted column checksums of the *resulting* `C` in `chk` (a `2 × n`
/// matrix: row 0 unweighted sums, row 1 sums weighted by row index + 1).
///
/// On the blocked path the checksums come from the fused micro-kernel
/// epilogue — a cache-hot read-back per stored micro-tile instead of a
/// separate pass over `C`. Products below the blocking threshold (and the
/// degenerate `alpha == 0` / `k == 0` cases) compute the product normally
/// and take one plain column sweep. Checksum summation order differs from
/// [`crate::level1::dot`]-based re-encoding, so results agree with a
/// separate recalculation only to normal rounding (relative `~1e-12`), not
/// bitwise.
#[allow(clippy::too_many_arguments)]
pub fn gemm_fused<S: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix<S>,
    b: &Matrix<S>,
    beta: f64,
    c: &mut Matrix<S>,
    chk: &mut Matrix<S>,
) {
    let (m, ka) = trans_a.apply(a.shape());
    let (kb, n) = trans_b.apply(b.shape());
    assert_eq!(ka, kb, "gemm_fused inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm_fused output shape mismatch");
    assert_eq!(chk.shape(), (2, n), "gemm_fused checksum shape mismatch");
    let k = ka;

    apply_beta(beta, c.as_mut_slice());
    if alpha != 0.0 && k != 0 && use_blocked(m, n, k) {
        // f64 takes the fused blocked engine; other precisions fall through
        // to the scalar product + second-pass sweep.
        if let (Some(a64), Some(b64)) = (as_f64(a), as_f64(b)) {
            let c64 = as_f64_mut(c).expect("a, b, c share one element type");
            let chk64 = as_f64_mut(chk).expect("chk shares the element type");
            let av = MatRef::new(a64, trans_a);
            let bv = MatRef::new(b64, trans_b);
            let cv = MatMut::new(c64);
            let (mut v1, mut v2) = (vec![0.0; n], vec![0.0; n]);
            gemm_blocked_fused(alpha, &av, &bv, &cv, Some((&mut v1, &mut v2)));
            for j in 0..n {
                chk64.set(0, j, v1[j]);
                chk64.set(1, j, v2[j]);
            }
            return;
        }
    }
    if alpha != 0.0 && k != 0 {
        naive::naive_gemm_accum(trans_a, trans_b, alpha, a, b, c);
    }
    encode_cols(c, chk);
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::reference::ref_gemm;
    use hchol_matrix::generate::uniform;
    use hchol_matrix::{approx_eq, Matrix};

    #[test]
    fn small_known_product() {
        let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_row_major(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm_into(Trans::No, Trans::No, &a, &b);
        let want = Matrix::from_row_major(2, 2, &[19.0, 22.0, 43.0, 50.0]).unwrap();
        assert!(approx_eq(&c, &want, 1e-14));
    }

    #[test]
    fn all_transpose_combos_match_reference() {
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            // op(A): 4x3, op(B): 3x5
            let a_shape = ta.apply((4, 3)); // stored shape
            let b_shape = tb.apply((3, 5));
            let a = uniform(a_shape.0, a_shape.1, -1.0, 1.0, 1);
            let b = uniform(b_shape.0, b_shape.1, -1.0, 1.0, 2);
            let mut c = uniform(4, 5, -1.0, 1.0, 3);
            let mut c_ref = c.clone();
            gemm(ta, tb, 1.7, &a, &b, -0.3, &mut c);
            ref_gemm(ta, tb, 1.7, &a, &b, -0.3, &mut c_ref);
            assert!(approx_eq(&c, &c_ref, 1e-12), "ta={ta:?} tb={tb:?}");
        }
    }

    #[test]
    fn blocked_path_matches_reference_all_transposes() {
        // Big enough to force the blocked engine, odd enough to exercise
        // every edge tile (m, n not multiples of MR/NR; k crosses KC).
        let (m, n, k) = (MC + MR + 3, NR * 12 + 5, KC + 7);
        assert!(use_blocked(m, n, k));
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let a_shape = ta.apply((m, k));
            let b_shape = tb.apply((k, n));
            let a = uniform(a_shape.0, a_shape.1, -1.0, 1.0, 11);
            let b = uniform(b_shape.0, b_shape.1, -1.0, 1.0, 12);
            let mut c = uniform(m, n, -1.0, 1.0, 13);
            let mut c_ref = c.clone();
            gemm(ta, tb, -0.8, &a, &b, 0.6, &mut c);
            naive::naive_gemm(ta, tb, -0.8, &a, &b, 0.6, &mut c_ref);
            assert!(approx_eq(&c, &c_ref, 1e-11), "ta={ta:?} tb={tb:?}");
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::filled(2, 2, f64::NAN);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(approx_eq(&c, &Matrix::identity(2), 0.0));
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let a = uniform(3, 3, -1.0, 1.0, 4);
        let b = uniform(3, 3, -1.0, 1.0, 5);
        let mut c = Matrix::filled(3, 3, 2.0);
        gemm(Trans::No, Trans::No, 0.0, &a, &b, 0.5, &mut c);
        assert!(approx_eq(&c, &Matrix::filled(3, 3, 1.0), 0.0));
    }

    #[test]
    fn k_zero_leaves_scaled_c() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::filled(3, 2, 4.0);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.25, &mut c);
        assert!(approx_eq(&c, &Matrix::filled(3, 2, 1.0), 0.0));
    }

    #[test]
    #[should_panic]
    fn inner_dim_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
    }

    /// Reference checksums by definition: ascending-row weighted sums.
    pub(crate) fn ref_checksums(c: &Matrix) -> Matrix {
        let mut chk = Matrix::zeros(2, c.cols());
        for j in 0..c.cols() {
            let (mut s1, mut s2) = (0.0, 0.0);
            for (i, &v) in c.col(j).iter().enumerate() {
                s1 += v;
                s2 += (i + 1) as f64 * v;
            }
            chk.set(0, j, s1);
            chk.set(1, j, s2);
        }
        chk
    }

    /// Documented epsilon of the fused epilogue: summation order differs
    /// from a separate re-encoding pass, so agreement is to rounding —
    /// relative to the column's absolute mass, not bitwise.
    pub(crate) fn assert_chk_close(got: &Matrix, c: &Matrix, label: &str) {
        let want = ref_checksums(c);
        let m = c.rows() as f64;
        for j in 0..c.cols() {
            let scale: f64 = c.col(j).iter().map(|v| v.abs()).sum::<f64>() * m + 1.0;
            for r in 0..2 {
                let d = (got.get(r, j) - want.get(r, j)).abs();
                assert!(d <= 1e-12 * scale, "{label}: chk[{r},{j}] off by {d:e}");
            }
        }
    }

    #[test]
    fn fused_blocked_matches_plain_gemm_and_checksums() {
        // Big enough for the blocked engine, odd enough for edge tiles in
        // both directions, k crossing KC so the epilogue fires only on the
        // final slab.
        let (m, n, k) = (MC + MR + 3, NR * 12 + 5, KC + 7);
        assert!(use_blocked(m, n, k));
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            let a_shape = ta.apply((m, k));
            let b_shape = tb.apply((k, n));
            let a = uniform(a_shape.0, a_shape.1, -1.0, 1.0, 21);
            let b = uniform(b_shape.0, b_shape.1, -1.0, 1.0, 22);
            let mut c = uniform(m, n, -1.0, 1.0, 23);
            let mut c_ref = c.clone();
            let mut chk = Matrix::zeros(2, n);
            gemm_fused(ta, tb, -0.7, &a, &b, 0.4, &mut c, &mut chk);
            gemm(ta, tb, -0.7, &a, &b, 0.4, &mut c_ref);
            // The product itself is bitwise-identical to the unfused engine:
            // the epilogue only reads.
            assert!(approx_eq(&c, &c_ref, 0.0), "ta={ta:?} tb={tb:?}");
            assert_chk_close(&chk, &c, "blocked");
        }
    }

    #[test]
    fn fused_small_path_takes_second_pass() {
        let (m, n, k) = (13, 9, 7);
        assert!(!use_blocked(m, n, k));
        let a = uniform(m, k, -1.0, 1.0, 24);
        let b = uniform(k, n, -1.0, 1.0, 25);
        let mut c = uniform(m, n, -1.0, 1.0, 26);
        let mut c_ref = c.clone();
        let mut chk = Matrix::zeros(2, n);
        gemm_fused(Trans::No, Trans::No, 1.1, &a, &b, -0.2, &mut c, &mut chk);
        gemm(Trans::No, Trans::No, 1.1, &a, &b, -0.2, &mut c_ref);
        assert!(approx_eq(&c, &c_ref, 0.0));
        assert_chk_close(&chk, &c, "small");
    }

    #[test]
    fn fused_degenerate_checksums_cover_beta_c() {
        // alpha == 0 and k == 0 leave beta·C; the checksums must describe it.
        let mut c = uniform(6, 4, -1.0, 1.0, 27);
        let a = Matrix::zeros(6, 0);
        let b = Matrix::zeros(0, 4);
        let mut chk = Matrix::zeros(2, 4);
        gemm_fused(Trans::No, Trans::No, 1.0, &a, &b, 0.5, &mut c, &mut chk);
        assert_chk_close(&chk, &c, "k=0");

        let a = uniform(6, 5, -1.0, 1.0, 28);
        let b = uniform(5, 4, -1.0, 1.0, 29);
        let c0 = c.clone();
        gemm_fused(Trans::No, Trans::No, 0.0, &a, &b, 1.0, &mut c, &mut chk);
        assert!(approx_eq(&c, &c0, 0.0));
        assert_chk_close(&chk, &c, "alpha=0");
    }
}
