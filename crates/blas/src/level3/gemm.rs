//! General matrix-matrix multiply.

use crate::level1::axpy;
use hchol_matrix::{Matrix, Trans};

/// `C := alpha * op(A) * op(B) + beta * C`.
///
/// Shapes: `op(A)` is `m × k`, `op(B)` is `k × n`, `C` is `m × n`.
/// Panics on shape mismatch; `A`, `B` and `C` must be distinct matrices
/// (guaranteed by Rust's borrow rules).
///
/// Loop order is chosen per transposition so the innermost loop always runs
/// down a stored column (unit stride in column-major storage).
pub fn gemm(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, ka) = trans_a.apply(a.shape());
    let (kb, n) = trans_b.apply(b.shape());
    assert_eq!(ka, kb, "gemm inner dimension mismatch");
    assert_eq!(c.shape(), (m, n), "gemm output shape mismatch");
    let k = ka;

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }

    match (trans_a, trans_b) {
        // C[:,j] += alpha * Σ_l A[:,l] * B[l,j] — pure axpy form.
        (Trans::No, Trans::No) => {
            for j in 0..n {
                let bcol = b.col(j);
                let ccol = c.col_mut(j);
                for (l, &blj) in bcol.iter().enumerate() {
                    axpy(alpha * blj, a.col(l), ccol);
                }
            }
        }
        // B used transposed: B[l,j] = Bᵀ stored as b[j,l].
        (Trans::No, Trans::Yes) => {
            for j in 0..n {
                let ccol = c.col_mut(j);
                for l in 0..k {
                    axpy(alpha * b.get(j, l), a.col(l), ccol);
                }
            }
        }
        // A used transposed: C[i,j] += alpha * dot(A[:,i], B[:,j]).
        (Trans::Yes, Trans::No) => {
            for j in 0..n {
                let bcol = b.col(j);
                for i in 0..m {
                    let s = crate::level1::dot(a.col(i), bcol);
                    let v = c.get(i, j) + alpha * s;
                    c.set(i, j, v);
                }
            }
        }
        // Both transposed: C[i,j] += alpha * Σ_l a[l,i] * b[j,l].
        (Trans::Yes, Trans::Yes) => {
            for j in 0..n {
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = 0.0;
                    for (l, &ali) in acol.iter().enumerate() {
                        s += ali * b.get(j, l);
                    }
                    let v = c.get(i, j) + alpha * s;
                    c.set(i, j, v);
                }
            }
        }
    }
}

/// Convenience: allocate and return `op(A) * op(B)`.
pub fn gemm_into(trans_a: Trans, trans_b: Trans, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, _) = trans_a.apply(a.shape());
    let (_, n) = trans_b.apply(b.shape());
    let mut c = Matrix::zeros(m, n);
    gemm(trans_a, trans_b, 1.0, a, b, 0.0, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ref_gemm;
    use hchol_matrix::generate::uniform;
    use hchol_matrix::{approx_eq, Matrix};

    #[test]
    fn small_known_product() {
        let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_row_major(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm_into(Trans::No, Trans::No, &a, &b);
        let want = Matrix::from_row_major(2, 2, &[19.0, 22.0, 43.0, 50.0]).unwrap();
        assert!(approx_eq(&c, &want, 1e-14));
    }

    #[test]
    fn all_transpose_combos_match_reference() {
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::No),
            (Trans::Yes, Trans::Yes),
        ] {
            // op(A): 4x3, op(B): 3x5
            let a_shape = ta.apply((4, 3)); // stored shape
            let b_shape = tb.apply((3, 5));
            let a = uniform(a_shape.0, a_shape.1, -1.0, 1.0, 1);
            let b = uniform(b_shape.0, b_shape.1, -1.0, 1.0, 2);
            let mut c = uniform(4, 5, -1.0, 1.0, 3);
            let mut c_ref = c.clone();
            gemm(ta, tb, 1.7, &a, &b, -0.3, &mut c);
            ref_gemm(ta, tb, 1.7, &a, &b, -0.3, &mut c_ref);
            assert!(approx_eq(&c, &c_ref, 1e-12), "ta={ta:?} tb={tb:?}");
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::filled(2, 2, f64::NAN);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
        assert!(approx_eq(&c, &Matrix::identity(2), 0.0));
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let a = uniform(3, 3, -1.0, 1.0, 4);
        let b = uniform(3, 3, -1.0, 1.0, 5);
        let mut c = Matrix::filled(3, 3, 2.0);
        gemm(Trans::No, Trans::No, 0.0, &a, &b, 0.5, &mut c);
        assert!(approx_eq(&c, &Matrix::filled(3, 3, 1.0), 0.0));
    }

    #[test]
    fn k_zero_leaves_scaled_c() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::filled(3, 2, 4.0);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.25, &mut c);
        assert!(approx_eq(&c, &Matrix::filled(3, 2, 1.0), 0.0));
    }

    #[test]
    #[should_panic]
    fn inner_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c);
    }
}
