//! Register-blocked micro-kernel of the blocked GEMM engine.
//!
//! Computes an `MR×NR` tile of `op(A)·op(B)` from one packed A row-panel and
//! one packed B column-panel, accumulating into a caller-provided `[[f64;
//! MR]; NR]` tile. On x86-64 the hot path is written with explicit SIMD
//! intrinsics — auto-vectorization of this loop proved unreliable across
//! codegen-unit splits — selected once per process by runtime feature
//! detection:
//!
//! * AVX-512F: each of the NR columns is one zmm accumulator (MR = 8 lanes)
//!   updated by a broadcast-FMA per k step;
//! * AVX2+FMA: two ymm accumulators per column — the classic 8×6 kernel,
//!   12 independent FMA chains that saturate both FMA ports;
//! * anything else: a scalar `mul_add` loop.
//!
//! All three paths perform the same fused multiply-adds in the same k order
//! on each (i, j) element independently, so they produce bitwise-identical
//! tiles. Edge tiles reuse the same full-width kernel — packing zero-pads
//! the panels — and the caller's store step masks the overhang.

/// Micro-tile rows (vector-register lanes; one zmm / two ymm of f64).
pub const MR: usize = 8;
/// Micro-tile columns (accumulator registers).
pub const NR: usize = 6;

/// `acc[j][i] += Σ_p pa[p·MR + i] · pb[p·NR + j]` over `kc` k-steps.
///
/// `pa` is one packed A micro-panel (`MR` contiguous row values per k step),
/// `pb` one packed B micro-panel (`NR` contiguous column values per k step).
#[inline]
pub(crate) fn micro_kernel(kc: usize, pa: &[f64], pb: &[f64], acc: &mut [[f64; MR]; NR]) {
    debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature checked; panel lengths asserted above.
            unsafe { x86::kernel_avx512(kc, pa.as_ptr(), pb.as_ptr(), acc) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: features checked; panel lengths asserted above.
            unsafe { x86::kernel_fma(kc, pa.as_ptr(), pb.as_ptr(), acc) };
            return;
        }
    }
    kernel_generic(kc, pa, pb, acc);
}

/// Portable fallback (and the reference the SIMD paths must match).
fn kernel_generic(kc: usize, pa: &[f64], pb: &[f64], acc: &mut [[f64; MR]; NR]) {
    for (a, b) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)).take(kc) {
        for (j, &bj) in b.iter().enumerate() {
            let col = &mut acc[j];
            for i in 0..MR {
                col[i] = a[i].mul_add(bj, col[i]);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// One zmm per column: 6 accumulators, broadcast-FMA per (j, p).
    ///
    /// # Safety
    /// Caller guarantees AVX-512F is available and that `pa`/`pb` point to
    /// at least `kc·MR` / `kc·NR` readable doubles.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn kernel_avx512(
        kc: usize,
        pa: *const f64,
        pb: *const f64,
        acc: &mut [[f64; MR]; NR],
    ) {
        // SAFETY: caller upholds the documented contract — AVX-512F present,
        // panels hold `kc·MR` / `kc·NR` doubles — and `acc` columns are
        // exactly MR = 8 lanes wide, so every load/store is in bounds.
        unsafe {
            let mut c: [__m512d; NR] = [_mm512_setzero_pd(); NR];
            for (j, col) in acc.iter().enumerate() {
                c[j] = _mm512_loadu_pd(col.as_ptr());
            }
            for p in 0..kc {
                let a = _mm512_loadu_pd(pa.add(p * MR));
                let bp = pb.add(p * NR);
                for (j, cj) in c.iter_mut().enumerate() {
                    let b = _mm512_set1_pd(*bp.add(j));
                    *cj = _mm512_fmadd_pd(a, b, *cj);
                }
            }
            for (j, col) in acc.iter_mut().enumerate() {
                _mm512_storeu_pd(col.as_mut_ptr(), c[j]);
            }
        }
    }

    /// Two ymm per column: the 8×6 AVX2 kernel (12 independent FMA chains).
    ///
    /// # Safety
    /// Caller guarantees AVX2 and FMA are available and that `pa`/`pb` point
    /// to at least `kc·MR` / `kc·NR` readable doubles.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn kernel_fma(kc: usize, pa: *const f64, pb: *const f64, acc: &mut [[f64; MR]; NR]) {
        // SAFETY: caller upholds the documented contract — AVX2+FMA present,
        // panels hold `kc·MR` / `kc·NR` doubles — and each 8-lane `acc`
        // column splits into two in-bounds 4-lane halves.
        unsafe {
            let mut lo: [__m256d; NR] = [_mm256_setzero_pd(); NR];
            let mut hi: [__m256d; NR] = [_mm256_setzero_pd(); NR];
            for (j, col) in acc.iter().enumerate() {
                lo[j] = _mm256_loadu_pd(col.as_ptr());
                hi[j] = _mm256_loadu_pd(col.as_ptr().add(4));
            }
            for p in 0..kc {
                let a0 = _mm256_loadu_pd(pa.add(p * MR));
                let a1 = _mm256_loadu_pd(pa.add(p * MR + 4));
                let bp = pb.add(p * NR);
                for j in 0..NR {
                    let b = _mm256_set1_pd(*bp.add(j));
                    lo[j] = _mm256_fmadd_pd(a0, b, lo[j]);
                    hi[j] = _mm256_fmadd_pd(a1, b, hi[j]);
                }
            }
            for (j, col) in acc.iter_mut().enumerate() {
                _mm256_storeu_pd(col.as_mut_ptr(), lo[j]);
                _mm256_storeu_pd(col.as_mut_ptr().add(4), hi[j]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_scalar_triple_loop() {
        let kc = 11;
        let pa: Vec<f64> = (0..kc * MR).map(|v| (v as f64).sin()).collect();
        let pb: Vec<f64> = (0..kc * NR).map(|v| (v as f64).cos()).collect();
        let mut acc = [[0.0; MR]; NR];
        micro_kernel(kc, &pa, &pb, &mut acc);
        for j in 0..NR {
            for i in 0..MR {
                let want: f64 = (0..kc).map(|p| pa[p * MR + i] * pb[p * NR + j]).sum();
                assert!((acc[j][i] - want).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn simd_paths_match_generic_bitwise() {
        let kc = 37;
        let pa: Vec<f64> = (0..kc * MR).map(|v| (v as f64 * 0.7).sin()).collect();
        let pb: Vec<f64> = (0..kc * NR).map(|v| (v as f64 * 1.3).cos()).collect();
        let mut want = [[0.25; MR]; NR];
        kernel_generic(kc, &pa, &pb, &mut want);
        let mut got = [[0.25; MR]; NR];
        micro_kernel(kc, &pa, &pb, &mut got);
        // Same fma, same k order, independent lanes ⇒ bitwise equality.
        assert_eq!(got, want);
    }

    #[test]
    fn accumulates_into_existing_tile() {
        let kc = 3;
        let pa = vec![1.0; kc * MR];
        let pb = vec![2.0; kc * NR];
        let mut acc = [[10.0; MR]; NR];
        micro_kernel(kc, &pa, &pb, &mut acc);
        assert_eq!(acc, [[16.0; MR]; NR]); // 10 + 3·(1·2)
    }

    #[test]
    fn kc_zero_leaves_accumulator() {
        let mut acc = [[1.5; MR]; NR];
        micro_kernel(0, &[], &[], &mut acc);
        assert_eq!(acc, [[1.5; MR]; NR]);
    }
}
