//! # hchol-blas
//!
//! From-scratch dense linear-algebra kernels for the ABFT Cholesky
//! reproduction: BLAS levels 1–3 plus the unblocked (`POTF2`) and blocked
//! (`POTRF`) Cholesky factorizations.
//!
//! The paper links against cuBLAS (GPU) and ACML (CPU); neither exists here,
//! so these kernels are the arithmetic that actually runs inside the
//! simulated device of `hchol-gpusim` *and* on the simulated host. Absolute
//! speed therefore does not determine experiment outcomes — the device
//! profiles' analytic cost model does — but Execute-mode hot paths still run
//! real flops, so large level-3 calls route through a BLIS-style blocked
//! engine (packed operands, register-tiled micro-kernel, `MC/KC/NC`
//! macro-loops — see [`level3`]) with optional `std::thread` parallelism
//! over macro-tiles, and small calls keep simple cache-aware column loops.
//!
//! Conventions match reference BLAS:
//! * column-major storage ([`hchol_matrix::Matrix`]),
//! * `Lower`/`Upper`, `Trans`, `Side`, `Diag` descriptors from
//!   `hchol_matrix::triangular`,
//! * shape errors are programming errors and panic (asserted), while
//!   *numerical* failures (loss of positive definiteness — exactly what a
//!   storage error can cause mid-factorization) are returned as
//!   `Err(MatrixError::NotPositiveDefinite)`.

// The only crate in the workspace allowed to contain `unsafe` (raw-pointer
// matrix views and SIMD intrinsics); every unsafe operation must be spelled
// out even inside unsafe fns, and every block carries a `// SAFETY:` comment
// (enforced by the hchol-analyze lint).
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod cast;
pub mod flops;
pub mod level1;
pub mod level2;
pub mod level3;
#[cfg(feature = "parallel")]
pub mod par;
pub mod potrf;
pub mod reference;

pub use level2::{gemv, ger, trsv};
pub use level3::{gemm, gemm_fused, naive_gemm, naive_syrk, syrk, syrk_fused, trsm};
pub use potrf::{potf2, potrf_blocked, potrf_tiled};
