//! Floating-point operation counts for every kernel class.
//!
//! These formulas serve two masters: the simulated device's cost model
//! (`hchol-gpusim` divides them by a profile throughput to advance its
//! virtual clock) and the paper's Section-VI overhead analysis, which states
//! its budgets in exactly these terms (`N_Cho = n³/3`, `N_Upd = 2n³/(3B)`,
//! `N_Rec = 2n³/(3B)`).

/// FLOPs of `C (m×n) += op(A) (m×k) · op(B) (k×n)`: one multiply + one add
/// per inner-product step.
pub fn gemm(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// FLOPs of a SYRK updating the `uplo` triangle of an `n×n` result from an
/// `n×k` operand (half of the full GEMM, plus the diagonal).
pub fn syrk(n: usize, k: usize) -> u64 {
    (n as u64) * (n as u64 + 1) * k as u64
}

/// FLOPs of a TRSM with an `s×s` triangular matrix against an `m×n` RHS
/// (`s` = m for Left, n for Right): each RHS vector costs `s²` flops.
pub fn trsm(side_dim: usize, other_dim: usize) -> u64 {
    (side_dim as u64) * (side_dim as u64) * other_dim as u64
}

/// FLOPs of an unblocked Cholesky of an `n×n` block: `n³/3` to leading order
/// (exact: n³/3 + n²/2 + n/6).
pub fn potf2(n: usize) -> u64 {
    let n = n as u64;
    (2 * n * n * n + 3 * n * n + n) / 6
}

/// FLOPs of a full Cholesky of an `n×n` matrix: `n³/3` to leading order.
pub fn cholesky(n: usize) -> u64 {
    potf2(n)
}

/// FLOPs of a GEMV with an `m×n` matrix.
pub fn gemv(m: usize, n: usize) -> u64 {
    2 * m as u64 * n as u64
}

/// FLOPs to *encode* the two weighted column checksums of one `r×c` block:
/// two GEMVs (`vᵀ·A`).
pub fn encode_block(r: usize, c: usize) -> u64 {
    2 * gemv(r, c)
}

/// FLOPs to *recalculate* (re-derive for verification) both checksums of an
/// `r×c` block — identical work to encoding.
pub fn recalc_block(r: usize, c: usize) -> u64 {
    encode_block(r, c)
}

/// FLOPs to *compare* recalculated against stored checksums of a `c`-column
/// block and locate an error: a handful of ops per column.
pub fn verify_compare(c: usize) -> u64 {
    4 * c as u64
}

/// FLOPs of the *fused* checksum epilogue over an `r×c` output block: the
/// same arithmetic as [`recalc_block`] (two weighted column sums), but
/// performed on register/cache-resident tiles inside the host SYRK/GEMM
/// kernel instead of as a separate memory-bound pass.
pub fn fused_epilogue(r: usize, c: usize) -> u64 {
    recalc_block(r, c)
}

/// GFLOP/s helper: `flops / seconds / 1e9`.
pub fn gflops(flops: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    flops as f64 / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_symmetry() {
        assert_eq!(gemm(2, 3, 4), 48);
        assert_eq!(gemm(3, 2, 4), gemm(2, 3, 4));
    }

    #[test]
    fn cholesky_leading_order() {
        let n = 1000usize;
        let exact = cholesky(n) as f64;
        let leading = (n as f64).powi(3) / 3.0;
        assert!((exact - leading).abs() / leading < 2e-3);
    }

    #[test]
    fn syrk_is_half_gemm_plus_diagonal() {
        let (n, k) = (64, 32);
        assert_eq!(syrk(n, k), (gemm(n, n, k) / 2) + (n as u64 * k as u64));
    }

    #[test]
    fn encode_equals_recalc() {
        assert_eq!(encode_block(256, 256), recalc_block(256, 256));
        // Two GEMVs over a B×B block = 4B² flops, matching the paper's
        // O_encode = 2n² for the whole matrix (per-block 4B², (n/B)² blocks,
        // halved for the lower triangle).
        assert_eq!(encode_block(256, 256), 4 * 256 * 256);
    }

    #[test]
    fn gflops_guards_zero_time() {
        assert_eq!(gflops(1000, 0.0), 0.0);
        assert!((gflops(2_000_000_000, 1.0) - 2.0).abs() < 1e-12);
    }
}
