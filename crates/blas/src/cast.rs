//! Safe precision dispatch for the f64-only blocked engine.
//!
//! The packed SIMD engine (`pack.rs`, `microkernel.rs`, the recursive TRSM)
//! is written against `f64` storage. The public kernels are generic over
//! [`Scalar`]; when instantiated at `S = f64` they route onto the fast engine
//! by *downcasting* the matrix references via `core::any::Any` — a safe,
//! zero-copy identity conversion that the sealed `Scalar` trait guarantees
//! can only succeed when `S` really is `f64`. Other precisions (f32) fall
//! back to the scalar reference loops, as documented in DESIGN.md §14.

use core::any::Any;
use hchol_matrix::{Matrix, Scalar};

/// `&Matrix<S>` as `&Matrix<f64>` when `S = f64`.
#[inline]
pub(crate) fn as_f64<S: Scalar>(m: &Matrix<S>) -> Option<&Matrix<f64>> {
    (m as &dyn Any).downcast_ref::<Matrix<f64>>()
}

/// `&mut Matrix<S>` as `&mut Matrix<f64>` when `S = f64`.
#[inline]
pub(crate) fn as_f64_mut<S: Scalar>(m: &mut Matrix<S>) -> Option<&mut Matrix<f64>> {
    (m as &mut dyn Any).downcast_mut::<Matrix<f64>>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downcast_succeeds_only_for_f64() {
        let mut a = Matrix::<f64>::zeros(2, 2);
        assert!(as_f64(&a).is_some());
        assert!(as_f64_mut(&mut a).is_some());
        let mut b = Matrix::<f32>::zeros(2, 2);
        assert!(as_f64(&b).is_none());
        assert!(as_f64_mut(&mut b).is_none());
    }

    #[test]
    fn downcast_is_identity() {
        let mut a = Matrix::<f64>::zeros(2, 2);
        a.set(1, 0, 3.5);
        let v = as_f64(&a).unwrap();
        assert_eq!(v.get(1, 0), 3.5);
        as_f64_mut(&mut a).unwrap().set(0, 1, -1.0);
        assert_eq!(a.get(0, 1), -1.0);
    }
}
