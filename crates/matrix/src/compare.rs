//! Approximate comparison helpers used by tests and by the ABFT verifier's
//! numeric tolerances.

use crate::dense::Matrix;
use crate::norms;
use crate::scalar::Scalar;

/// Largest absolute elementwise difference between two same-shaped matrices.
///
/// Panics on shape mismatch.
pub fn max_abs_diff<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "max_abs_diff shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs().to_f64())
        .fold(0.0, f64::max)
}

/// True if every element of `a` and `b` differs by at most `tol`.
pub fn approx_eq<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>, tol: f64) -> bool {
    a.shape() == b.shape() && max_abs_diff(a, b) <= tol
}

/// Relative residual `‖a − b‖_F / max(‖b‖_F, tiny)`.
///
/// The canonical accuracy metric for factorizations: pass the reconstruction
/// `L·Lᵀ` as `a` and the original matrix as `b`.
pub fn relative_residual<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "relative_residual shape mismatch");
    let mut diff = a.clone();
    diff.sub_assign(b);
    let denom = norms::frobenius(b).max(f64::MIN_POSITIVE);
    norms::frobenius(&diff) / denom
}

/// Scalar approximate equality with combined absolute/relative tolerance:
/// `|x − y| ≤ abs_tol + rel_tol · max(|x|, |y|)`.
pub fn scalar_approx_eq(x: f64, y: f64, abs_tol: f64, rel_tol: f64) -> bool {
    (x - y).abs() <= abs_tol + rel_tol * x.abs().max(y.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_matrices() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * j) as f64);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
        assert!(approx_eq(&a, &a, 0.0));
        assert_eq!(relative_residual(&a, &a), 0.0);
    }

    #[test]
    fn detects_single_difference() {
        let a = Matrix::<f64>::zeros(2, 2);
        let mut b = a.clone();
        b.set(1, 0, 1e-3);
        assert_eq!(max_abs_diff(&a, &b), 1e-3);
        assert!(!approx_eq(&a, &b, 1e-4));
        assert!(approx_eq(&a, &b, 1e-2));
    }

    #[test]
    fn shape_mismatch_is_not_equal() {
        let a = Matrix::<f64>::zeros(2, 2);
        let b = Matrix::<f64>::zeros(2, 3);
        assert!(!approx_eq(&a, &b, 1e9));
    }

    #[test]
    fn relative_residual_scale_invariant() {
        let b = Matrix::from_fn(4, 4, |i, j| 1.0 + (i + 2 * j) as f64);
        let mut a = b.clone();
        a.set(0, 0, a.get(0, 0) + 0.01);
        let r1 = relative_residual(&a, &b);
        let mut b2 = b.clone();
        b2.scale(1e6);
        let mut a2 = b2.clone();
        a2.set(0, 0, a2.get(0, 0) + 0.01 * 1e6);
        let r2 = relative_residual(&a2, &b2);
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn scalar_tolerances() {
        assert!(scalar_approx_eq(1.0, 1.0 + 1e-12, 0.0, 1e-10));
        assert!(!scalar_approx_eq(1.0, 1.1, 0.0, 1e-10));
        assert!(scalar_approx_eq(0.0, 1e-14, 1e-12, 0.0));
    }
}
