//! # hchol-matrix
//!
//! Dense column-major matrix storage and the block (tile) layout used by the
//! ABFT Cholesky reproduction.
//!
//! The crate provides:
//!
//! * [`Matrix`] — an owned, contiguous, column-major matrix with a safe
//!   element / column / sub-rectangle API, generic over the [`Scalar`]
//!   element type (default `f64`). This is the unit every BLAS kernel in
//!   `hchol-blas` operates on.
//! * [`TileMatrix`] — a matrix stored as a grid of `B × B` tiles. MAGMA's
//!   blocked Cholesky treats blocks as updating units and the paper encodes
//!   checksums *per block*, so tile storage is the natural representation on
//!   the simulated device: each tile is an independently owned [`Matrix`],
//!   which lets Rust's borrow checker prove the disjointness that LAPACK-style
//!   pointer arithmetic only promises.
//! * Generators for symmetric positive-definite test problems
//!   ([`generate`]), norms and approximate comparison ([`norms`],
//!   [`compare`]), and the IEEE-754 bit manipulation used by the storage-error
//!   injector ([`bits`]).
//!
//! The paper implements and evaluates the double-precision routine
//! (`dpotrf`), so `f64` is the default element type everywhere; the sealed
//! [`Scalar`] trait additionally admits `f32` for the reduced-precision
//! workloads that the adaptive verification tolerances target. Generators
//! ([`generate`]) and file I/O ([`io`]) stay `f64`-only — reduced-precision
//! inputs are obtained by [`Matrix::cast`]-ing a generated `f64` problem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod compare;
pub mod dense;
pub mod error;
pub mod generate;
pub mod io;
pub mod norms;
pub mod scalar;
pub mod tile;
pub mod triangular;

pub use compare::{approx_eq, max_abs_diff, relative_residual};
pub use dense::Matrix;
pub use error::MatrixError;
pub use scalar::{DType, Scalar};
pub use tile::TileMatrix;
pub use triangular::{Diag, Side, Trans, Uplo};
