//! IEEE-754 bit manipulation for storage-error (bit-flip) injection.
//!
//! The paper's "storage errors" are memory bit flips ("0 becomes 1") that
//! strike a matrix element while it sits in DRAM between a checksum
//! verification and the next read. These helpers flip chosen bits of an `f64`
//! and classify how severe a flip in each bit position is, which the fault
//! campaigns in `hchol-faults` use to build representative error populations.
//!
//! The precision-generic variants ([`flip_bit_scalar`], [`flip_bits_scalar`])
//! work on any [`Scalar`] and reduce bit indices modulo [`Scalar::BITS`], so
//! one campaign spec written against the 64-bit layout drives both precisions
//! (a canonical f64 flip of bit 53 strikes bit `53 % 32 = 21` of an f32).

use crate::scalar::Scalar;

/// Flip bit `bit` (0 = least significant mantissa bit, 63 = sign) of `x`.
///
/// Panics if `bit >= 64`.
#[inline]
pub fn flip_bit(x: f64, bit: u32) -> f64 {
    assert!(bit < 64, "f64 has 64 bits");
    f64::from_bits(x.to_bits() ^ (1u64 << bit))
}

/// Flip several distinct bits at once (a multi-bit upset — the case the
/// paper notes ECC cannot correct).
pub fn flip_bits(x: f64, bits: &[u32]) -> f64 {
    let mut mask = 0u64;
    for &b in bits {
        assert!(b < 64, "f64 has 64 bits");
        mask ^= 1u64 << b;
    }
    f64::from_bits(x.to_bits() ^ mask)
}

/// Flip bit `bit % S::BITS` of a value of any supported precision.
#[inline]
pub fn flip_bit_scalar<S: Scalar>(x: S, bit: u32) -> S {
    S::from_bits_u64(x.to_bits_u64() ^ (1u64 << (bit % S::BITS)))
}

/// Flip several bits at once in a value of any supported precision.
///
/// Each index is reduced modulo [`Scalar::BITS`]; two canonical indices that
/// collide after reduction cancel, exactly as duplicate indices do in
/// [`flip_bits`].
pub fn flip_bits_scalar<S: Scalar>(x: S, bits: &[u32]) -> S {
    let mut mask = 0u64;
    for &b in bits {
        mask ^= 1u64 << (b % S::BITS);
    }
    S::from_bits_u64(x.to_bits_u64() ^ mask)
}

/// Which field of the IEEE-754 double a bit position falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitField {
    /// Bits 0–51.
    Mantissa,
    /// Bits 52–62.
    Exponent,
    /// Bit 63.
    Sign,
}

/// Classify a bit position.
pub fn classify_bit(bit: u32) -> BitField {
    match bit {
        0..=51 => BitField::Mantissa,
        52..=62 => BitField::Exponent,
        63 => BitField::Sign,
        _ => panic!("f64 has 64 bits"),
    }
}

/// Absolute change caused by flipping `bit` of `x`.
pub fn flip_magnitude(x: f64, bit: u32) -> f64 {
    (flip_bit(x, bit) - x).abs()
}

/// Number of differing bits between two doubles (Hamming distance of their
/// bit patterns).
pub fn hamming(a: f64, b: f64) -> u32 {
    (a.to_bits() ^ b.to_bits()).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involution() {
        let x = 1.2345678901234567;
        for bit in [0u32, 17, 51, 52, 60, 63] {
            assert_eq!(flip_bit(flip_bit(x, bit), bit), x);
        }
    }

    #[test]
    fn sign_flip_negates() {
        assert_eq!(flip_bit(2.5, 63), -2.5);
        assert_eq!(flip_bit(-1.0, 63), 1.0);
    }

    #[test]
    fn exponent_flip_changes_scale() {
        let x = 1.0; // exponent field 0x3FF (all low bits set)
        let y = flip_bit(x, 52); // lowest exponent bit clears: 1.0 -> 0.5
        assert_eq!(y, 0.5);
        // Top exponent bit of 1.5 flips the exponent to all-ones: the value
        // leaves the finite range entirely (Inf/NaN class) — the catastrophic
        // storage error the paper warns can break positive definiteness.
        let z = flip_bit(1.5, 62);
        assert!(!z.is_finite());
    }

    #[test]
    fn mantissa_flip_is_small_for_low_bits() {
        let x = 1.0;
        let y = flip_bit(x, 0);
        assert!(y != x);
        assert!((y - x).abs() < 1e-15);
        assert_eq!(flip_magnitude(x, 0), (y - x).abs());
    }

    #[test]
    fn multi_bit_flip() {
        let x = 1.0;
        let y = flip_bits(x, &[0, 1, 63]);
        assert_eq!(hamming(x, y), 3);
        // flipping the same set again restores the value
        assert_eq!(flip_bits(y, &[0, 1, 63]), x);
        // duplicate bits cancel
        assert_eq!(flip_bits(x, &[5, 5]), x);
    }

    #[test]
    fn classify_fields() {
        assert_eq!(classify_bit(0), BitField::Mantissa);
        assert_eq!(classify_bit(51), BitField::Mantissa);
        assert_eq!(classify_bit(52), BitField::Exponent);
        assert_eq!(classify_bit(62), BitField::Exponent);
        assert_eq!(classify_bit(63), BitField::Sign);
    }

    #[test]
    #[should_panic]
    fn out_of_range_bit_panics() {
        let _ = flip_bit(1.0, 64);
    }

    #[test]
    fn scalar_flip_matches_f64_helpers() {
        let x = 1.2345678901234567_f64;
        assert_eq!(flip_bit_scalar(x, 53), flip_bit(x, 53));
        assert_eq!(flip_bits_scalar(x, &[30, 53]), flip_bits(x, &[30, 53]));
    }

    #[test]
    fn scalar_flip_wraps_for_f32() {
        let x = 1.5f32;
        // canonical f64 index 53 lands on f32 bit 21
        assert_eq!(
            flip_bit_scalar(x, 53),
            f32::from_bits(x.to_bits() ^ (1 << 21))
        );
        // involution still holds after reduction
        let y = flip_bits_scalar(x, &[30, 53]);
        assert_eq!(flip_bits_scalar(y, &[30, 53]), x);
        // indices that collide mod 32 cancel
        assert_eq!(flip_bits_scalar(x, &[5, 37]), x);
    }

    #[test]
    fn hamming_zero_for_equal() {
        assert_eq!(hamming(42.0, 42.0), 0);
        assert_eq!(hamming(0.0, -0.0), 1); // sign bit differs
    }
}
