//! Owned, contiguous, column-major dense matrix.

use crate::error::MatrixError;
use crate::scalar::Scalar;

/// An owned column-major matrix over a [`Scalar`] element type (default
/// `f64`, the paper's working precision).
///
/// Storage is a single contiguous `Vec<S>` of length `rows * cols`, with
/// element `(i, j)` at offset `i + j * rows` (leading dimension equals the
/// row count, as in a freshly allocated LAPACK matrix).
///
/// ```
/// use hchol_matrix::Matrix;
/// let mut a = Matrix::zeros(2, 3);
/// a.set(1, 2, 5.0);
/// assert_eq!(a.get(1, 2), 5.0);
/// assert_eq!(a.as_slice()[1 + 2 * 2], 5.0);
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix<S: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> std::fmt::Debug for Matrix<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:>12.5e} ", self.get(i, j))?;
            }
            if self.cols > show_cols {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl<S: Scalar> Matrix<S> {
    /// Create a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![S::ZERO; rows * cols],
        }
    }

    /// Create a `rows × cols` matrix with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: S) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, S::ONE);
        }
        m
    }

    /// Build a matrix from column-major data.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<S>) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::LengthMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build a matrix from row-major data (transposing into column-major).
    pub fn from_row_major(rows: usize, cols: usize, data: &[S]) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::LengthMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, data[i * cols + j]);
            }
        }
        Ok(m)
    }

    /// Build a matrix by evaluating `f(i, j)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element `(i, j)`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows]
    }

    /// Set element `(i, j)`. Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows] = v;
    }

    /// Checked element access.
    pub fn try_get(&self, i: usize, j: usize) -> Result<S, MatrixError> {
        if i >= self.rows || j >= self.cols {
            return Err(MatrixError::OutOfBounds {
                index: (i, j),
                shape: self.shape(),
            });
        }
        Ok(self.get(i, j))
    }

    /// The backing column-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// The backing column-major slice, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[S] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [S] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Two distinct columns, the first shared and the second mutable.
    ///
    /// Panics if `j_src == j_dst`.
    pub fn col_pair_mut(&mut self, j_src: usize, j_dst: usize) -> (&[S], &mut [S]) {
        assert_ne!(j_src, j_dst, "columns must be distinct");
        let r = self.rows;
        if j_src < j_dst {
            let (lo, hi) = self.data.split_at_mut(j_dst * r);
            (&lo[j_src * r..j_src * r + r], &mut hi[..r])
        } else {
            let (lo, hi) = self.data.split_at_mut(j_src * r);
            (&hi[..r], &mut lo[j_dst * r..j_dst * r + r])
        }
    }

    /// Copy of row `i`.
    pub fn row(&self, i: usize) -> Vec<S> {
        debug_assert!(i < self.rows);
        (0..self.cols).map(|j| self.get(i, j)).collect()
    }

    /// Copy out the `nrows × ncols` rectangle whose top-left corner is
    /// `(row0, col0)`.
    pub fn sub_matrix(&self, row0: usize, col0: usize, nrows: usize, ncols: usize) -> Matrix<S> {
        assert!(row0 + nrows <= self.rows && col0 + ncols <= self.cols);
        let mut out = Matrix::zeros(nrows, ncols);
        for j in 0..ncols {
            let src = &self.col(col0 + j)[row0..row0 + nrows];
            out.col_mut(j).copy_from_slice(src);
        }
        out
    }

    /// Copy `block` into the rectangle whose top-left corner is `(row0, col0)`.
    pub fn set_sub_matrix(&mut self, row0: usize, col0: usize, block: &Matrix<S>) {
        assert!(row0 + block.rows <= self.rows && col0 + block.cols <= self.cols);
        for j in 0..block.cols {
            let dst_col = col0 + j;
            let r = self.rows;
            let dst = &mut self.data[dst_col * r + row0..dst_col * r + row0 + block.rows];
            dst.copy_from_slice(block.col(j));
        }
    }

    /// The transpose (owned copy).
    pub fn transpose(&self) -> Matrix<S> {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Elementwise `self += other`. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix<S>) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// Elementwise `self -= other`. Panics on shape mismatch.
    pub fn sub_assign(&mut self, other: &Matrix<S>) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= *b;
        }
    }

    /// Multiply every element by `s`.
    pub fn scale(&mut self, s: S) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Set every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(S::ZERO);
    }

    /// Symmetrize in place: `A := (A + Aᵀ) / 2`. Panics if not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        let half = S::from_f64(0.5);
        for j in 0..self.cols {
            for i in (j + 1)..self.rows {
                let avg = half * (self.get(i, j) + self.get(j, i));
                self.set(i, j, avg);
                self.set(j, i, avg);
            }
        }
    }

    /// Mirror the lower triangle into the upper triangle (make symmetric from
    /// the lower half). Panics if not square.
    pub fn mirror_lower(&mut self) {
        assert!(self.is_square());
        for j in 0..self.cols {
            for i in (j + 1)..self.rows {
                let v = self.get(i, j);
                self.set(j, i, v);
            }
        }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Consume the matrix, returning its column-major data.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Convert every element to another precision (rounding when narrowing).
    ///
    /// Workload generators produce `f64`; reduced-precision runs cast the
    /// generated SPD matrix down with this. Rounding a symmetric
    /// diagonally-dominant matrix elementwise preserves both properties, so
    /// the cast input stays valid for Cholesky.
    pub fn cast<T: Scalar>(&self) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| T::from_f64(x.to_f64())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::<f64>::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(!m.is_square());
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn col_major_layout() {
        let m = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        // column 0 = [1, 2], column 1 = [3, 4]
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn row_major_roundtrip() {
        let m = Matrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(0), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(matches!(
            Matrix::from_col_major(2, 2, vec![1.0]),
            Err(MatrixError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Matrix::from_row_major(2, 2, &[1.0]),
            Err(MatrixError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn identity_diag() {
        let m = Matrix::<f64>::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn sub_matrix_and_set() {
        let m = Matrix::from_fn(5, 5, |i, j| (i * 10 + j) as f64);
        let b = m.sub_matrix(1, 2, 2, 3);
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b.get(0, 0), 12.0);
        assert_eq!(b.get(1, 2), 24.0);

        let mut m2 = Matrix::zeros(5, 5);
        m2.set_sub_matrix(1, 2, &b);
        assert_eq!(m2.get(1, 2), 12.0);
        assert_eq!(m2.get(2, 4), 24.0);
        assert_eq!(m2.get(0, 0), 0.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 4, |i, j| (i + 7 * j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn col_pair_mut_disjoint() {
        let mut m = Matrix::from_fn(3, 3, |i, j| (i + 3 * j) as f64);
        {
            let (src, dst) = m.col_pair_mut(0, 2);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d = *s + 100.0;
            }
        }
        assert_eq!(m.get(0, 2), 100.0);
        assert_eq!(m.get(2, 2), 102.0);
        // reversed order
        let (src, dst) = m.col_pair_mut(2, 0);
        assert_eq!(src[0], 100.0);
        dst[0] = -1.0;
    }

    #[test]
    #[should_panic]
    fn col_pair_mut_same_col_panics() {
        let mut m = Matrix::<f64>::zeros(2, 2);
        let _ = m.col_pair_mut(1, 1);
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let mut m = Matrix::from_fn(4, 4, |i, j| (3 * i + j) as f64);
        m.symmetrize();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn mirror_lower_copies_lower_to_upper() {
        let mut m = Matrix::from_fn(3, 3, |i, j| if i >= j { (i + 1) as f64 } else { 99.0 });
        m.mirror_lower();
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 2), 3.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::filled(2, 2, 3.0);
        let mut b = Matrix::filled(2, 2, 1.0);
        b.add_assign(&a);
        assert_eq!(b.get(0, 0), 4.0);
        b.sub_assign(&a);
        assert_eq!(b.get(1, 1), 1.0);
        b.scale(5.0);
        assert_eq!(b.get(0, 1), 5.0);
        b.fill_zero();
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m.set(1, 0, f64::NAN);
        assert!(m.has_non_finite());
        m.set(1, 0, f64::INFINITY);
        assert!(m.has_non_finite());
    }

    #[test]
    fn try_get_bounds() {
        let m = Matrix::<f64>::zeros(2, 2);
        assert!(m.try_get(1, 1).is_ok());
        assert!(matches!(
            m.try_get(2, 0),
            Err(MatrixError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn f32_matrix_basic_ops() {
        let mut m = Matrix::<f32>::zeros(3, 3);
        m.set(1, 2, 2.5f32);
        assert_eq!(m.get(1, 2), 2.5f32);
        m.scale(2.0f32);
        assert_eq!(m.get(1, 2), 5.0f32);
        m.mirror_lower();
        assert!(m.is_square());
    }

    #[test]
    fn cast_roundtrip_and_narrowing() {
        let m = Matrix::from_fn(3, 3, |i, j| (i + 10 * j) as f64 + 0.5);
        let f: Matrix<f32> = m.cast();
        assert_eq!(f.get(2, 1), 12.5f32); // exactly representable
        let back: Matrix<f64> = f.cast();
        assert_eq!(back, m); // small integers + halves survive the roundtrip
                             // narrowing rounds
        let mut p = Matrix::<f64>::zeros(1, 1);
        p.set(0, 0, 1.0 + 1e-12);
        assert_eq!(p.cast::<f32>().get(0, 0), 1.0f32);
    }
}
