//! Matrix and vector norms.

use crate::dense::Matrix;
use crate::scalar::Scalar;

/// Frobenius norm `sqrt(Σ aᵢⱼ²)`, computed with scaling to avoid overflow.
pub fn frobenius<S: Scalar>(m: &Matrix<S>) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for x in m.as_slice().iter().map(|x| x.to_f64()) {
        if x != 0.0 {
            let ax = x.abs();
            if scale < ax {
                ssq = 1.0 + ssq * (scale / ax).powi(2);
                scale = ax;
            } else {
                ssq += (ax / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// One-norm: maximum absolute column sum.
pub fn one_norm<S: Scalar>(m: &Matrix<S>) -> f64 {
    (0..m.cols())
        .map(|j| m.col(j).iter().map(|x| x.abs().to_f64()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Infinity-norm: maximum absolute row sum.
pub fn inf_norm<S: Scalar>(m: &Matrix<S>) -> f64 {
    let mut sums = vec![0.0f64; m.rows()];
    for j in 0..m.cols() {
        for (i, x) in m.col(j).iter().enumerate() {
            sums[i] += x.abs().to_f64();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Max-norm: largest absolute element.
pub fn max_norm<S: Scalar>(m: &Matrix<S>) -> f64 {
    m.as_slice()
        .iter()
        .map(|x| x.abs().to_f64())
        .fold(0.0, f64::max)
}

/// Euclidean norm of a vector slice (with overflow-safe scaling).
pub fn vec_norm2<S: Scalar>(v: &[S]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for x in v.iter().map(|x| x.to_f64()) {
        if x != 0.0 {
            let ax = x.abs();
            if scale < ax {
                ssq = 1.0 + ssq * (scale / ax).powi(2);
                scale = ax;
            } else {
                ssq += (ax / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_simple() {
        let m = Matrix::from_col_major(2, 2, vec![3.0, 0.0, 0.0, 4.0]).unwrap();
        assert!((frobenius(&m) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn frobenius_overflow_safe() {
        let m = Matrix::filled(2, 2, 1e200);
        let n = frobenius(&m);
        assert!(n.is_finite());
        assert!((n - 2e200).abs() / 2e200 < 1e-14);
    }

    #[test]
    fn one_and_inf_norms() {
        // [[1, -2], [3, 4]] col-major: col0=[1,3], col1=[-2,4]
        let m = Matrix::from_col_major(2, 2, vec![1.0, 3.0, -2.0, 4.0]).unwrap();
        assert_eq!(one_norm(&m), 6.0); // |−2| + |4|
        assert_eq!(inf_norm(&m), 7.0); // |3| + |4|
        assert_eq!(max_norm(&m), 4.0);
    }

    #[test]
    fn norms_of_zero_matrix() {
        let m = Matrix::<f64>::zeros(3, 3);
        assert_eq!(frobenius(&m), 0.0);
        assert_eq!(one_norm(&m), 0.0);
        assert_eq!(inf_norm(&m), 0.0);
        assert_eq!(max_norm(&m), 0.0);
    }

    #[test]
    fn vec_norm2_matches_naive() {
        let v = [1.0f64, 2.0, 2.0];
        assert!((vec_norm2(&v) - 3.0).abs() < 1e-15);
        assert_eq!(vec_norm2::<f64>(&[]), 0.0);
    }

    #[test]
    fn inf_norm_transpose_is_one_norm() {
        let m = Matrix::from_fn(3, 4, |i, j| (i as f64 - j as f64) * 1.5);
        assert!((inf_norm(&m) - one_norm(&m.transpose())).abs() < 1e-12);
    }
}
