//! Block (tile) matrix storage.
//!
//! MAGMA's blocked Cholesky treats `B × B` blocks as its updating unit, and
//! the paper encodes its two weighted column checksums *per block* ("we choose
//! to encode the input matrix using the matrix block as a unit instead of the
//! whole matrix"). [`TileMatrix`] mirrors that: the matrix is a grid of
//! independently-owned [`Matrix`] tiles. Independent ownership is what lets
//! the hybrid runtime hand one tile to the (simulated) GPU while the host
//! reads others, with the borrow checker enforcing the disjointness.
//!
//! Edge tiles are allowed to be smaller than `B` so arbitrary `n` is
//! supported, although the paper's experiments always use `n` a multiple of
//! the block size.

use crate::dense::Matrix;
use crate::error::MatrixError;
use crate::scalar::Scalar;

/// A matrix stored as a grid of tiles (blocks).
#[derive(Clone, Debug, PartialEq)]
pub struct TileMatrix<S: Scalar = f64> {
    rows: usize,
    cols: usize,
    block: usize,
    grid_rows: usize,
    grid_cols: usize,
    tiles: Vec<Matrix<S>>, // column-major grid: tile (bi, bj) at bi + bj * grid_rows
}

impl<S: Scalar> TileMatrix<S> {
    /// Create a zero `rows × cols` tile matrix with block size `block`.
    pub fn zeros(rows: usize, cols: usize, block: usize) -> Result<Self, MatrixError> {
        if block == 0 {
            return Err(MatrixError::ZeroBlockSize);
        }
        let grid_rows = rows.div_ceil(block);
        let grid_cols = cols.div_ceil(block);
        let mut tiles = Vec::with_capacity(grid_rows * grid_cols);
        for bj in 0..grid_cols {
            for bi in 0..grid_rows {
                let tr = tile_extent(rows, block, bi);
                let tc = tile_extent(cols, block, bj);
                tiles.push(Matrix::zeros(tr, tc));
            }
        }
        Ok(TileMatrix {
            rows,
            cols,
            block,
            grid_rows,
            grid_cols,
            tiles,
        })
    }

    /// Partition a dense matrix into tiles.
    pub fn from_dense(dense: &Matrix<S>, block: usize) -> Result<Self, MatrixError> {
        let mut t = TileMatrix::zeros(dense.rows(), dense.cols(), block)?;
        for bj in 0..t.grid_cols {
            for bi in 0..t.grid_rows {
                let (r0, c0) = (bi * block, bj * block);
                let tr = tile_extent(dense.rows(), block, bi);
                let tc = tile_extent(dense.cols(), block, bj);
                *t.tile_mut(bi, bj) = dense.sub_matrix(r0, c0, tr, tc);
            }
        }
        Ok(t)
    }

    /// Reassemble the tiles into a contiguous dense matrix.
    pub fn to_dense(&self) -> Matrix<S> {
        let mut d = Matrix::zeros(self.rows, self.cols);
        for bj in 0..self.grid_cols {
            for bi in 0..self.grid_rows {
                d.set_sub_matrix(bi * self.block, bj * self.block, self.tile(bi, bj));
            }
        }
        d
    }

    /// Global row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Global column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block size `B`.
    #[inline]
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of tile rows in the grid.
    #[inline]
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Number of tile columns in the grid.
    #[inline]
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    #[inline]
    fn idx(&self, bi: usize, bj: usize) -> usize {
        debug_assert!(bi < self.grid_rows && bj < self.grid_cols);
        bi + bj * self.grid_rows
    }

    /// Tile `(bi, bj)` of the grid.
    #[inline]
    pub fn tile(&self, bi: usize, bj: usize) -> &Matrix<S> {
        &self.tiles[self.idx(bi, bj)]
    }

    /// Tile `(bi, bj)` of the grid, mutable.
    #[inline]
    pub fn tile_mut(&mut self, bi: usize, bj: usize) -> &mut Matrix<S> {
        let i = self.idx(bi, bj);
        &mut self.tiles[i]
    }

    /// One tile mutably plus another tile shared. Panics if the coordinates
    /// coincide.
    pub fn tile_pair(
        &mut self,
        mut_coord: (usize, usize),
        ref_coord: (usize, usize),
    ) -> (&mut Matrix<S>, &Matrix<S>) {
        assert_ne!(mut_coord, ref_coord, "tiles must be distinct");
        let im = self.idx(mut_coord.0, mut_coord.1);
        let ir = self.idx(ref_coord.0, ref_coord.1);
        let [m, r] = self
            .tiles
            .get_disjoint_mut([im, ir])
            .expect("indices are distinct and in bounds");
        (m, &*r)
    }

    /// Global element access (row, col in the full matrix).
    pub fn get(&self, i: usize, j: usize) -> S {
        let (bi, ii) = (i / self.block, i % self.block);
        let (bj, jj) = (j / self.block, j % self.block);
        self.tile(bi, bj).get(ii, jj)
    }

    /// Global element assignment.
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        let (bi, ii) = (i / self.block, i % self.block);
        let (bj, jj) = (j / self.block, j % self.block);
        self.tile_mut(bi, bj).set(ii, jj, v);
    }

    /// Iterate over tile coordinates `(bi, bj)` in column-major grid order.
    pub fn tile_coords(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let gr = self.grid_rows;
        (0..self.grid_cols).flat_map(move |bj| (0..gr).map(move |bi| (bi, bj)))
    }
}

/// Extent of tile index `b` along a dimension of length `total` with block
/// size `block`: `block` for interior tiles, the remainder for the last tile.
fn tile_extent(total: usize, block: usize, b: usize) -> usize {
    let start = b * block;
    debug_assert!(start < total || total == 0);
    block.min(total - start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_block_size_rejected() {
        assert!(matches!(
            TileMatrix::<f64>::zeros(4, 4, 0),
            Err(MatrixError::ZeroBlockSize)
        ));
    }

    #[test]
    fn exact_partition_roundtrip() {
        let d = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let t = TileMatrix::from_dense(&d, 2).unwrap();
        assert_eq!(t.grid_rows(), 3);
        assert_eq!(t.grid_cols(), 3);
        assert_eq!(t.tile(1, 2).shape(), (2, 2));
        assert_eq!(t.to_dense(), d);
    }

    #[test]
    fn ragged_partition_roundtrip() {
        let d = Matrix::from_fn(5, 7, |i, j| (i * 100 + j) as f64);
        let t = TileMatrix::from_dense(&d, 3).unwrap();
        assert_eq!(t.grid_rows(), 2);
        assert_eq!(t.grid_cols(), 3);
        assert_eq!(t.tile(1, 2).shape(), (2, 1)); // 5-3=2 rows, 7-6=1 col
        assert_eq!(t.to_dense(), d);
    }

    #[test]
    fn global_get_set() {
        let mut t = TileMatrix::zeros(6, 6, 2).unwrap();
        t.set(4, 5, 9.0);
        assert_eq!(t.get(4, 5), 9.0);
        assert_eq!(t.tile(2, 2).get(0, 1), 9.0);
    }

    #[test]
    fn tile_pair_disjoint_borrows() {
        let mut t = TileMatrix::zeros(4, 4, 2).unwrap();
        t.set(0, 0, 3.0); // tile (0,0)
        {
            let (m, r) = t.tile_pair((1, 1), (0, 0));
            let v = r.get(0, 0);
            m.set(0, 0, v * 2.0);
        }
        assert_eq!(t.get(2, 2), 6.0);
        // reversed index order
        {
            let (m, r) = t.tile_pair((0, 0), (1, 1));
            let v = r.get(0, 0);
            m.set(1, 1, v + 1.0);
        }
        assert_eq!(t.get(1, 1), 7.0);
    }

    #[test]
    #[should_panic]
    fn tile_pair_same_tile_panics() {
        let mut t = TileMatrix::<f64>::zeros(4, 4, 2).unwrap();
        let _ = t.tile_pair((0, 0), (0, 0));
    }

    #[test]
    fn tile_coords_cover_grid() {
        let t = TileMatrix::<f64>::zeros(4, 6, 2).unwrap();
        let coords: Vec<_> = t.tile_coords().collect();
        assert_eq!(coords.len(), 2 * 3);
        assert!(coords.contains(&(1, 2)));
    }
}
