//! Error type shared by the matrix crates.

use std::fmt;

/// Errors produced by matrix construction and shape-checked operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// Requested dimensions do not match the provided data length.
    LengthMismatch {
        /// Rows requested.
        rows: usize,
        /// Columns requested.
        cols: usize,
        /// Length of the data actually provided.
        len: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// The offending (row, col) index.
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// The offending shape.
        shape: (usize, usize),
    },
    /// The matrix is not (numerically) positive definite: a non-positive
    /// pivot was encountered at the given diagonal index during Cholesky.
    NotPositiveDefinite {
        /// Diagonal index of the failing pivot (global, 0-based).
        pivot: usize,
        /// The value of the failing pivot.
        value: f64,
    },
    /// A tile grid was asked for with a block size of zero.
    ZeroBlockSize,
    /// The requested option combination is not supported (e.g. sharding
    /// composed with the runtime balance controller).
    UnsupportedConfig(&'static str),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::LengthMismatch { rows, cols, len } => write!(
                f,
                "data length {len} does not match {rows}x{cols} = {} elements",
                rows * cols
            ),
            MatrixError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::OutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            MatrixError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            MatrixError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} is {value:e}"
            ),
            MatrixError::ZeroBlockSize => write!(f, "block size must be nonzero"),
            MatrixError::UnsupportedConfig(why) => {
                write!(f, "unsupported configuration: {why}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MatrixError::LengthMismatch {
            rows: 2,
            cols: 3,
            len: 5,
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('6'), "{s}");

        let e = MatrixError::NotPositiveDefinite {
            pivot: 4,
            value: -1.0,
        };
        assert!(e.to_string().contains("pivot 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MatrixError>();
    }
}
