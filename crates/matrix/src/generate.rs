//! Generators for test matrices, in particular the symmetric
//! positive-definite inputs Cholesky requires.
//!
//! All generators are deterministic given a seed (ChaCha8), so every
//! experiment in the bench harness is exactly reproducible.

use crate::dense::Matrix;
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A seeded RNG for matrix generation (ChaCha8: fast, portable, reproducible).
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Uniform random matrix with entries in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, seed: u64) -> Matrix {
    let mut r = rng(seed);
    let dist = Uniform::new(lo, hi);
    Matrix::from_fn(rows, cols, |_, _| dist.sample(&mut r))
}

/// Symmetric positive-definite matrix by diagonal dominance:
/// `A = R + Rᵀ + 2n·I` with `R` uniform in `[0, 1)`.
///
/// This is the standard way dense-linear-algebra test harnesses (including
/// MAGMA's own `testing_dpotrf`) manufacture SPD inputs: strict diagonal
/// dominance with positive diagonal guarantees positive definiteness while
/// keeping the condition number moderate.
pub fn spd_diag_dominant(n: usize, seed: u64) -> Matrix {
    let mut r = rng(seed);
    let dist = Uniform::new(0.0, 1.0);
    let mut a = Matrix::from_fn(n, n, |_, _| dist.sample(&mut r));
    // Symmetrize, then shift the diagonal to dominate.
    let at = a.transpose();
    a.add_assign(&at);
    for i in 0..n {
        let v = a.get(i, i) + 2.0 * n as f64;
        a.set(i, i, v);
    }
    a
}

/// Symmetric positive-definite matrix as a Gram product `A = G·Gᵀ + ε·I`
/// with `G` uniform in `[-1, 1)`.
///
/// Slower to build (O(n³)) but exercises less-structured spectra than the
/// diagonally dominant generator.
pub fn spd_gram(n: usize, seed: u64) -> Matrix {
    let g = uniform(n, n, -1.0, 1.0, seed);
    let mut a = Matrix::zeros(n, n);
    // a = g * g^T, computed column by column.
    for j in 0..n {
        for k in 0..n {
            let gjk = g.get(j, k);
            if gjk == 0.0 {
                continue;
            }
            let gcol_k = g.col(k);
            let acol = a.col_mut(j);
            for i in 0..n {
                acol[i] += gcol_k[i] * gjk;
            }
        }
    }
    for i in 0..n {
        let v = a.get(i, i) + 1e-3 * n as f64;
        a.set(i, i, v);
    }
    a.symmetrize();
    a
}

/// A known lower-triangular `L` with positive diagonal, plus its exact
/// product `A = L·Lᵀ`. Useful when a test needs the true factor.
pub fn known_factor(n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut r = rng(seed);
    let dist = Uniform::new(-0.5, 0.5);
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        for i in j..n {
            let v = if i == j {
                let d: f64 = dist.sample(&mut r);
                1.0 + d.abs()
            } else {
                dist.sample(&mut r)
            };
            l.set(i, j, v);
        }
    }
    // A = L * L^T
    let mut a = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            let mut s = 0.0;
            for k in 0..=i.min(j) {
                s += l.get(i, k) * l.get(j, k);
            }
            a.set(i, j, s);
        }
    }
    (l, a)
}

/// The (notoriously ill-conditioned but SPD) Hilbert matrix
/// `aᵢⱼ = 1 / (i + j + 1)`.
pub fn hilbert(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| 1.0 / ((i + j + 1) as f64))
}

/// A Lehmer matrix `aᵢⱼ = min(i,j)+1 / (max(i,j)+1)`: SPD with known inverse,
/// mild conditioning.
pub fn lehmer(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        ((i.min(j) + 1) as f64) / ((i.max(j) + 1) as f64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangular::is_symmetric;

    #[test]
    fn uniform_in_range_and_deterministic() {
        let a = uniform(10, 10, -2.0, 3.0, 42);
        assert!(a.as_slice().iter().all(|&x| (-2.0..3.0).contains(&x)));
        let b = uniform(10, 10, -2.0, 3.0, 42);
        assert_eq!(a, b);
        let c = uniform(10, 10, -2.0, 3.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn spd_diag_dominant_is_symmetric_and_dominant() {
        let a = spd_diag_dominant(16, 7);
        assert!(is_symmetric(&a, 0.0));
        for i in 0..16 {
            let off: f64 = (0..16).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
            assert!(a.get(i, i) > off, "row {i} not dominant");
        }
    }

    #[test]
    fn spd_gram_is_symmetric_with_positive_diag() {
        let a = spd_gram(12, 3);
        assert!(is_symmetric(&a, 1e-12));
        for i in 0..12 {
            assert!(a.get(i, i) > 0.0);
        }
    }

    #[test]
    fn known_factor_is_consistent() {
        let (l, a) = known_factor(8, 11);
        assert!(crate::triangular::is_lower_triangular(&l, 0.0));
        for i in 0..8 {
            assert!(l.get(i, i) > 0.0);
        }
        // A must equal L·Lᵀ by construction; spot-check symmetry.
        assert!(is_symmetric(&a, 1e-14));
    }

    #[test]
    fn hilbert_and_lehmer_shapes() {
        let h = hilbert(4);
        assert_eq!(h.get(0, 0), 1.0);
        assert!((h.get(1, 2) - 0.25).abs() < 1e-15);
        assert!(is_symmetric(&h, 0.0));
        let l = lehmer(5);
        assert_eq!(l.get(2, 2), 1.0);
        assert!((l.get(0, 4) - 0.2).abs() < 1e-15);
        assert!(is_symmetric(&l, 0.0));
    }
}
