//! Matrix persistence: a simple self-describing binary format plus a
//! human-readable text form.
//!
//! Used to cache generated workloads and to export factors/results from the
//! examples and the bench harness. The binary format is
//! `HCHM` magic, a u32 version, u64 rows/cols, then column-major little-
//! endian f64 data — readable from any language in a dozen lines.

use crate::dense::Matrix;
use crate::error::MatrixError;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HCHM";
const VERSION: u32 = 1;

/// Errors from matrix (de)serialization.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a matrix file, or an unsupported version.
    Format(String),
    /// Shape/length inconsistency.
    Matrix(MatrixError),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<MatrixError> for IoError {
    fn from(e: MatrixError) -> Self {
        IoError::Matrix(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
            IoError::Matrix(e) => write!(f, "matrix error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Write `m` in the binary format.
pub fn write_binary<W: Write>(m: &Matrix, mut w: W) -> Result<(), IoError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    for &x in m.as_slice() {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Read a matrix from the binary format.
pub fn read_binary<R: Read>(mut r: R) -> Result<Matrix, IoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::Format("bad magic (not an HCHM file)".into()));
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let version = u32::from_le_bytes(b4);
    if version != VERSION {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let rows = u64::from_le_bytes(b8) as usize;
    r.read_exact(&mut b8)?;
    let cols = u64::from_le_bytes(b8) as usize;
    let count = rows
        .checked_mul(cols)
        .ok_or_else(|| IoError::Format("dimension overflow".into()))?;
    let mut data = Vec::with_capacity(count);
    for _ in 0..count {
        r.read_exact(&mut b8)?;
        data.push(f64::from_le_bytes(b8));
    }
    Ok(Matrix::from_col_major(rows, cols, data)?)
}

/// Save to a file in the binary format.
pub fn save(m: &Matrix, path: impl AsRef<Path>) -> Result<(), IoError> {
    let f = std::fs::File::create(path)?;
    write_binary(m, io::BufWriter::new(f))
}

/// Load from a binary-format file.
pub fn load(path: impl AsRef<Path>) -> Result<Matrix, IoError> {
    let f = std::fs::File::open(path)?;
    read_binary(io::BufReader::new(f))
}

/// Render as plain text: `rows cols` header line, then one
/// whitespace-separated row per line (full f64 round-trip precision).
pub fn to_text(m: &Matrix) -> String {
    let mut s = format!("{} {}\n", m.rows(), m.cols());
    for i in 0..m.rows() {
        let row: Vec<String> = (0..m.cols())
            .map(|j| format!("{:?}", m.get(i, j)))
            .collect();
        s.push_str(&row.join(" "));
        s.push('\n');
    }
    s
}

/// Parse the text form.
pub fn from_text(text: &str) -> Result<Matrix, IoError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| IoError::Format("empty input".into()))?;
    let mut parts = header.split_whitespace();
    let rows: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| IoError::Format("bad header".into()))?;
    let cols: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| IoError::Format("bad header".into()))?;
    let mut m = Matrix::zeros(rows, cols);
    for (i, line) in lines.enumerate() {
        if i >= rows {
            return Err(IoError::Format("too many rows".into()));
        }
        let mut count = 0;
        for (j, tok) in line.split_whitespace().enumerate() {
            if j >= cols {
                return Err(IoError::Format(format!("row {i}: too many columns")));
            }
            let v: f64 = tok
                .parse()
                .map_err(|_| IoError::Format(format!("row {i} col {j}: bad number")))?;
            m.set(i, j, v);
            count += 1;
        }
        if count != cols {
            return Err(IoError::Format(format!("row {i}: expected {cols} columns")));
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::uniform;

    #[test]
    fn binary_roundtrip_exact() {
        let m = uniform(7, 5, -1e10, 1e10, 1);
        let mut buf = Vec::new();
        write_binary(&m, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, m, "binary roundtrip must be bitwise");
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(matches!(
            read_binary(&b"NOPE"[..]),
            Err(IoError::Io(_)) | Err(IoError::Format(_))
        ));
        let mut buf = Vec::new();
        write_binary(&Matrix::identity(2), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_binary(buf.as_slice()),
            Err(IoError::Format(_))
        ));
        // truncated data
        let mut buf2 = Vec::new();
        write_binary(&Matrix::identity(2), &mut buf2).unwrap();
        buf2.truncate(buf2.len() - 3);
        assert!(matches!(read_binary(buf2.as_slice()), Err(IoError::Io(_))));
    }

    #[test]
    fn file_roundtrip() {
        let m = uniform(4, 4, -1.0, 1.0, 2);
        let dir = std::env::temp_dir().join("hchol_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.hchm");
        save(&m, &path).unwrap();
        assert_eq!(load(&path).unwrap(), m);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_roundtrip_exact() {
        // `{:?}` on f64 prints shortest-roundtrip representation.
        let m = uniform(3, 4, -1.0, 1.0, 3);
        let back = from_text(&to_text(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn text_rejects_malformed() {
        assert!(from_text("").is_err());
        assert!(from_text("2 2\n1 2\n3").is_err()); // short row
        assert!(from_text("2 2\n1 2 9\n3 4").is_err()); // long row
        assert!(from_text("2 2\n1 x\n3 4").is_err()); // bad number
        assert!(from_text("1 1\n1\n2\n").is_err()); // too many rows
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m = Matrix::zeros(0, 0);
        let mut buf = Vec::new();
        write_binary(&m, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), m);
    }
}
