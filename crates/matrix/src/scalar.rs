//! Precision-generic element trait for the numeric stack.
//!
//! Everything downstream of `hchol-matrix` — the BLAS kernels, the GPU
//! simulator's buffers, the checksum encode/update/verify pipeline — is
//! generic over [`Scalar`], which today means `f64` (the paper's working
//! precision) or `f32` (ROADMAP item 5(a)'s reduced-precision workload).
//!
//! The trait is deliberately *sealed*: the verify thresholds, bit-flip
//! injection masks, and golden-equivalence fixtures are only meaningful for
//! IEEE-754 binary32/binary64, so foreign implementations are not allowed.
//! Sealing also lets downstream crates reason soundly about `DTYPE`-based
//! dispatch (e.g. routing an `f64` call onto the SIMD micro-kernel).
//!
//! Design rules used across the workspace:
//!
//! * Scale factors (`alpha`/`beta`), norms, residuals, and tolerances stay
//!   `f64` at API boundaries and convert at the edge via [`Scalar::from_f64`]
//!   / [`Scalar::to_f64`]. For `S = f64` both conversions are the identity,
//!   which keeps the golden f64 fixtures byte-identical.
//! * Inner-loop arithmetic (GEMM accumulation, triangular solves) runs in
//!   `S`, so f32 runs exercise genuine single-precision round-off.
//! * Bit-level fault injection uses [`Scalar::to_bits_u64`] /
//!   [`Scalar::from_bits_u64`]; fault specs index bits modulo
//!   [`Scalar::BITS`] so one campaign spec drives both precisions.

use core::fmt::{Debug, Display, LowerExp};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod sealed {
    /// Prevents implementations of [`super::Scalar`] outside this crate.
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Runtime tag identifying a [`Scalar`] instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// IEEE-754 binary32.
    F32,
    /// IEEE-754 binary64 (the paper's working precision).
    F64,
}

impl DType {
    /// Lower-case name used in run-report configs and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::F64 => "f64",
        }
    }
}

impl Display for DType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// IEEE-754 floating-point element of the numeric stack (`f32` or `f64`).
///
/// See the [module docs](self) for the conventions attached to this trait.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + PartialEq
    + PartialOrd
    + Default
    + Debug
    + Display
    + LowerExp
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of this precision (`2^-52` for f64, `2^-23` for f32).
    const EPSILON: f64;
    /// Runtime precision tag.
    const DTYPE: DType;
    /// Size of one element in bytes (drives simulated transfer volumes).
    const BYTES: u64;
    /// Width of the bit pattern (bounds storage-fault bit indices).
    const BITS: u32;

    /// Round an `f64` to this precision.
    fn from_f64(x: f64) -> Self;
    /// Widen to `f64` (exact for both supported precisions).
    fn to_f64(self) -> f64;
    /// Convert a count/index (exact for the sizes used here).
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self * a + b` in this precision.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `false` for NaN and ±infinity.
    fn is_finite(self) -> bool;
    /// IEEE maximum (propagating the other operand over NaN like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// IEEE minimum.
    fn min(self, other: Self) -> Self;
    /// Raw bit pattern, zero-extended to 64 bits.
    fn to_bits_u64(self) -> u64;
    /// Rebuild from a bit pattern produced by [`Scalar::to_bits_u64`]
    /// (possibly with bits below [`Scalar::BITS`] flipped).
    fn from_bits_u64(bits: u64) -> Self;
    /// Quiet NaN.
    fn nan() -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: f64 = f64::EPSILON;
    const DTYPE: DType = DType::F64;
    const BYTES: u64 = 8;
    const BITS: u32 = 64;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn from_bits_u64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    #[inline(always)]
    fn nan() -> Self {
        f64::NAN
    }
    #[inline(always)]
    fn powi(self, n: i32) -> Self {
        f64::powi(self, n)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: f64 = f32::EPSILON as f64;
    const DTYPE: DType = DType::F32;
    const BYTES: u64 = 4;
    const BITS: u32 = 32;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn to_bits_u64(self) -> u64 {
        u64::from(self.to_bits())
    }
    #[inline(always)]
    fn from_bits_u64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
    #[inline(always)]
    fn nan() -> Self {
        f32::NAN
    }
    #[inline(always)]
    fn powi(self, n: i32) -> Self {
        f32::powi(self, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_metadata() {
        assert_eq!(<f64 as Scalar>::DTYPE.name(), "f64");
        assert_eq!(<f32 as Scalar>::DTYPE.name(), "f32");
        assert_eq!(<f64 as Scalar>::BYTES, 8);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f64 as Scalar>::BITS, 64);
        assert_eq!(<f32 as Scalar>::BITS, 32);
    }

    #[test]
    fn f64_conversions_are_identity() {
        let x = 1.234_567_890_123_456_7_f64;
        assert_eq!(<f64 as Scalar>::from_f64(x), x);
        assert_eq!(Scalar::to_f64(x), x);
        assert_eq!(
            f64::from_bits(x.to_bits()),
            <f64 as Scalar>::from_bits_u64(x.to_bits_u64())
        );
    }

    #[test]
    fn f32_round_trips_through_f64_exactly() {
        // binary32 embeds exactly into binary64.
        for x in [1.5f32, -0.1, core::f32::consts::PI, f32::MIN_POSITIVE] {
            assert_eq!(<f32 as Scalar>::from_f64(x.to_f64()), x);
        }
    }

    #[test]
    fn f32_bits_round_trip() {
        let x = -7.25f32;
        let bits = x.to_bits_u64();
        assert!(bits <= u64::from(u32::MAX));
        assert_eq!(<f32 as Scalar>::from_bits_u64(bits), x);
    }

    #[test]
    fn epsilon_ordering() {
        const { assert!(<f32 as Scalar>::EPSILON > <f64 as Scalar>::EPSILON) }
    }

    #[test]
    fn generic_helpers() {
        fn probe<S: Scalar>() -> f64 {
            let two = S::from_f64(2.0);
            (two * two + S::ONE).sqrt().to_f64()
        }
        assert!((probe::<f64>() - 5f64.sqrt()).abs() < 1e-15);
        assert!((probe::<f32>() - 5f64.sqrt()).abs() < 1e-6);
    }
}
