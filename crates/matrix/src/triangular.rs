//! BLAS-style operation descriptors and triangular-matrix predicates.

use crate::dense::Matrix;
use crate::scalar::Scalar;

/// Which triangle of a symmetric/triangular matrix is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Uplo {
    /// Lower triangle.
    Lower,
    /// Upper triangle.
    Upper,
}

/// Whether an operand is used transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    /// Shape of an `(r, c)` operand after applying this transposition.
    pub fn apply(self, shape: (usize, usize)) -> (usize, usize) {
        match self {
            Trans::No => shape,
            Trans::Yes => (shape.1, shape.0),
        }
    }
}

/// Which side a triangular operand appears on in TRSM/TRMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Side {
    /// `op(A) · X = B` — triangular matrix on the left.
    Left,
    /// `X · op(A) = B` — triangular matrix on the right.
    Right,
}

/// Whether the triangular operand has an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Diag {
    /// Diagonal stored explicitly.
    NonUnit,
    /// Diagonal implicitly all ones.
    Unit,
}

/// True if `m` is lower triangular to within `tol` (all strictly-upper
/// entries have magnitude ≤ `tol`).
pub fn is_lower_triangular<S: Scalar>(m: &Matrix<S>, tol: f64) -> bool {
    for j in 0..m.cols() {
        for i in 0..j.min(m.rows()) {
            if m.get(i, j).abs().to_f64() > tol {
                return false;
            }
        }
    }
    true
}

/// True if `m` is upper triangular to within `tol`.
pub fn is_upper_triangular<S: Scalar>(m: &Matrix<S>, tol: f64) -> bool {
    for j in 0..m.cols() {
        for i in (j + 1)..m.rows() {
            if m.get(i, j).abs().to_f64() > tol {
                return false;
            }
        }
    }
    true
}

/// True if `m` is symmetric to within `tol`.
pub fn is_symmetric<S: Scalar>(m: &Matrix<S>, tol: f64) -> bool {
    if !m.is_square() {
        return false;
    }
    for j in 0..m.cols() {
        for i in (j + 1)..m.rows() {
            if (m.get(i, j) - m.get(j, i)).abs().to_f64() > tol {
                return false;
            }
        }
    }
    true
}

/// Zero out the strictly-upper triangle, making the matrix explicitly lower
/// triangular. Panics if not square.
pub fn force_lower<S: Scalar>(m: &mut Matrix<S>) {
    assert!(m.is_square());
    for j in 1..m.cols() {
        for i in 0..j {
            m.set(i, j, S::ZERO);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    #[test]
    fn trans_apply() {
        assert_eq!(Trans::No.apply((2, 5)), (2, 5));
        assert_eq!(Trans::Yes.apply((2, 5)), (5, 2));
    }

    #[test]
    fn triangular_predicates() {
        let l = Matrix::from_fn(3, 3, |i, j| if i >= j { 1.0 } else { 0.0 });
        assert!(is_lower_triangular(&l, 0.0));
        assert!(!is_upper_triangular(&l, 0.0));
        let u = l.transpose();
        assert!(is_upper_triangular(&u, 0.0));
        assert!(!is_lower_triangular(&u, 0.0));
        // identity is both
        let i = Matrix::<f64>::identity(3);
        assert!(is_lower_triangular(&i, 0.0) && is_upper_triangular(&i, 0.0));
    }

    #[test]
    fn symmetry_predicate() {
        let mut m = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        assert!(is_symmetric(&m, 0.0));
        m.set(0, 2, 100.0);
        assert!(!is_symmetric(&m, 0.0));
        assert!(is_symmetric(&m, 1000.0));
        let rect = Matrix::<f64>::zeros(2, 3);
        assert!(!is_symmetric(&rect, 1.0));
    }

    #[test]
    fn force_lower_zeroes_upper() {
        let mut m = Matrix::filled(3, 3, 7.0);
        force_lower(&mut m);
        assert!(is_lower_triangular(&m, 0.0));
        assert_eq!(m.get(2, 0), 7.0);
        assert_eq!(m.get(0, 2), 0.0);
    }
}
