//! Property tests of the storage layer: layout round trips, tile
//! partitioning, norms, and bit manipulation.

use hchol_matrix::{bits, norms, Matrix, TileMatrix};
use proptest::prelude::*;

fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |v| Matrix::from_col_major(r, c, v).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn row_major_col_major_agree(m in matrix(9)) {
        let mut row_major = Vec::new();
        for i in 0..m.rows() {
            row_major.extend(m.row(i));
        }
        let back = Matrix::from_row_major(m.rows(), m.cols(), &row_major).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn transpose_is_involutive_and_preserves_norms(m in matrix(9)) {
        let t = m.transpose();
        prop_assert_eq!(t.transpose(), m.clone());
        prop_assert!((norms::frobenius(&t) - norms::frobenius(&m)).abs() < 1e-9);
        prop_assert!((norms::one_norm(&t) - norms::inf_norm(&m)).abs() < 1e-9);
    }

    #[test]
    fn tile_roundtrip_any_block_size(m in matrix(12), b in 1usize..15) {
        let t = TileMatrix::from_dense(&m, b).unwrap();
        prop_assert_eq!(t.to_dense(), m.clone());
        // Global accessors agree with the dense original.
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                prop_assert_eq!(t.get(i, j), m.get(i, j));
            }
        }
    }

    #[test]
    fn tile_set_then_to_dense(m in matrix(8), b in 1usize..10, v in -5.0f64..5.0) {
        let mut t = TileMatrix::from_dense(&m, b).unwrap();
        let (i, j) = (m.rows() - 1, m.cols() - 1);
        t.set(i, j, v);
        let d = t.to_dense();
        prop_assert_eq!(d.get(i, j), v);
        // Everything else untouched.
        let mut expect = m.clone();
        expect.set(i, j, v);
        prop_assert_eq!(d, expect);
    }

    #[test]
    fn sub_matrix_set_sub_matrix_roundtrip(
        m in matrix(10),
        frac_r in 0.0f64..1.0,
        frac_c in 0.0f64..1.0,
    ) {
        let r0 = (frac_r * (m.rows() - 1) as f64) as usize;
        let c0 = (frac_c * (m.cols() - 1) as f64) as usize;
        let nr = m.rows() - r0;
        let nc = m.cols() - c0;
        let block = m.sub_matrix(r0, c0, nr, nc);
        let mut copy = m.clone();
        copy.set_sub_matrix(r0, c0, &block);
        prop_assert_eq!(copy, m);
    }

    #[test]
    fn norm_inequalities_hold(m in matrix(9)) {
        // max ≤ fro; fro² ≤ one·inf·... use the standard bound
        // max |a_ij| ≤ ‖A‖_F and ‖A‖_F ≤ sqrt(rank) bounds get complex —
        // test the simple, always-true ones.
        let fro = norms::frobenius(&m);
        let max = norms::max_norm(&m);
        prop_assert!(max <= fro + 1e-12);
        let elems = (m.rows() * m.cols()) as f64;
        prop_assert!(fro <= max * elems.sqrt() + 1e-9);
    }

    #[test]
    fn bit_flips_are_involutive_everywhere(x in any::<f64>(), bit in 0u32..64) {
        prop_assume!(!x.is_nan());
        let y = bits::flip_bit(x, bit);
        prop_assert_eq!(bits::flip_bit(y, bit).to_bits(), x.to_bits());
        prop_assert_eq!(bits::hamming(x, y), 1);
    }

    #[test]
    fn symmetrize_is_idempotent(m in matrix(8)) {
        prop_assume!(m.is_square());
        let mut a = m.clone();
        a.symmetrize();
        let mut b = a.clone();
        b.symmetrize();
        prop_assert_eq!(a, b);
    }
}
