//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest! { #![proptest_config(..)] #[test] fn f(x in strategy, ..) {..} }`,
//! range/tuple/`Just`/`prop_oneof!`/`any::<T>()` strategies, `prop_map` /
//! `prop_flat_map`, `proptest::collection::vec`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated deterministically from a hash
//! of the test name, so failures are reproducible; there is **no shrinking**
//! (a failure reports the case index — rerun under a debugger if needed).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator driving the test cases.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty range");
        self.next_u64() % span
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between alternative strategies of one value type.
pub struct Union<T> {
    alts: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// From alternatives (at least one).
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alts.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { alts }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.alts.len() as u64) as usize;
        self.alts[i].generate(rng)
    }
}

// Integer ranges.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draw from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Raw bit patterns: covers subnormals, infinities and NaN, like
        // upstream's full-range f64. Tests filter with prop_assume!.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

/// Strategy over the whole domain of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoVecLen {
        /// Sample a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoVecLen for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoVecLen for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Box<dyn Fn(&mut TestRng) -> usize>,
    }

    /// `Vec` strategy with fixed or ranged length.
    pub fn vec<S: Strategy>(element: S, len: impl IntoVecLen + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: Box::new(move |rng| len.sample_len(rng)),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = (self.len)(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the case does not count.
    Reject(String),
}

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// FNV-1a hash of the test name: the deterministic per-test seed.
fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive one property test: called by the `proptest!` macro expansion.
pub fn run_test<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = seed_from_name(name);
    let mut rng = TestRng::new(seed);
    let mut accepted: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = 100 + config.cases * 20;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {accepted} (seed {seed:#x}): {msg}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declare property tests (see crate docs for the supported grammar).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{cfg=($cfg); $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{cfg=($crate::ProptestConfig::default()); $($rest)*}
    };
}

/// Internal: expand each `fn` inside a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg=($cfg:expr);) => {};
    (cfg=($cfg:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_test(
                config,
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng| {
                    $crate::__proptest_bind!(__proptest_rng, $body, $($params)*)
                },
            );
        }
        $crate::__proptest_fns!{cfg=($cfg); $($rest)*}
    };
}

/// Internal: peel `pat in strategy` bindings, then run the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block $(,)?) => {{
        #[allow(clippy::redundant_closure_call)]
        let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
            $body
            Ok(())
        })();
        __result
    }};
    ($rng:ident, $body:block, $p:pat in $s:expr) => {
        $crate::__proptest_bind!($rng, $body, $p in $s,)
    };
    ($rng:ident, $body:block, $p:pat in $s:expr, $($rest:tt)*) => {{
        let $p = $crate::Strategy::generate(&($s), $rng);
        $crate::__proptest_bind!($rng, $body, $($rest)*)
    }};
}

/// Assert inside a property test (early-returns a case failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$a, &$b);
        if !(__lhs == __rhs) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __lhs,
                __rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__lhs, __rhs) = (&$a, &$b);
        if !(__lhs == __rhs) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __lhs,
                __rhs
            )));
        }
    }};
}

/// Reject the current case unless `cond` holds (does not count as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..10, -1.0f64..1.0).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -2.0f64..2.0, b in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&b));
        }

        #[test]
        fn vec_and_flat_map(
            v in collection::vec(0.0f64..1.0, 5),
            w in collection::vec(1u32..7, 1..4),
            mut p in pair(),
        ) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!(!w.is_empty() && w.len() < 4);
            p.0 += 1;
            prop_assert!(p.0 >= 2);
        }

        #[test]
        fn oneof_and_assume(d in prop_oneof![0.5f64..1.0, -1.0f64..-0.5], flag in any::<bool>()) {
            prop_assume!(d != 0.75);
            prop_assert!(d.abs() >= 0.5 && d.abs() < 1.0, "d = {d}");
            let _ = flag;
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_context() {
        crate::run_test(ProptestConfig::with_cases(8), "demo", |rng| {
            let x = rng.unit_f64();
            if x >= 0.0 {
                return Err(TestCaseError::fail("always fails"));
            }
            Ok(())
        });
    }
}
