//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha8 stream generator (16-word state, 8
//! double-rounds, 64-byte blocks) behind the workspace `rand` shim traits.
//! The `seed_from_u64` key schedule follows the same SplitMix64 expansion
//! upstream `rand` uses, but bit-stream compatibility with the real crate is
//! *not* guaranteed — nothing in this workspace depends on specific values,
//! only on per-seed determinism and statistical quality.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words), constant words and counter/nonce are rebuilt per block.
    key: [u32; 8],
    counter: u64,
    buf: [u64; 8],
    /// Next unread index into `buf`; 8 means "refill".
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            state[i] = state[i].wrapping_add(input[i]);
        }
        for i in 0..8 {
            self.buf[i] = state[2 * i] as u64 | ((state[2 * i + 1] as u64) << 32);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 key expansion, as upstream rand does for small seeds.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 8],
            idx: 8,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.idx >= 8 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_mean_and_spread() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let vals: Vec<f64> = (0..n).map(|_| r.gen::<f64>()).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let below = vals.iter().filter(|v| **v < 0.25).count() as f64 / n as f64;
        assert!((below - 0.25).abs() < 0.02, "P(<0.25) {below}");
    }
}
