//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serde: serialization goes through an owned [`Value`] tree
//! (`Serialize::to_value` / `Deserialize::from_value`) instead of the
//! visitor machinery, and `serde_derive` is a small hand-written proc macro.
//! `serde_json` (also shimmed) renders/parses the `Value` tree. The derive
//! covers exactly the shapes this workspace uses: named structs, tuple and
//! unit structs, and enums with unit/tuple/struct variants — no generics,
//! no `#[serde(...)]` attributes.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like data tree: the intermediate form between Rust values
/// and text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative JSON integers).
    I64(i64),
    /// Unsigned integer (non-negative JSON integers).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order preserved so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's key/value pairs.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(p) => Some(p),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// "Expected X while reading Y" constructor used by generated code.
    pub fn expected(what: &str, context: &str) -> Error {
        Error(format!("expected {what} while deserializing {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Look up a required field in an object (helper for generated code).
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field `{name}`")))
}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Convert to a `Value`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from a `Value`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))?,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

// A `Value` serializes to itself — this is what lets pre-assembled JSON
// trees (e.g. hchol-obs artifact envelopes) pass through the generic
// `serde_json::to_string*` entry points.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Map keys must serialize to `Value::Str` (strings or unit-variant enums);
/// anything else is a programming error in this workspace.
fn key_to_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        other => panic!("unsupported map key type: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        // HashMap iteration order is unstable; sort for deterministic output.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = v
            .as_object()
            .ok_or_else(|| Error::expected("object", "HashMap"))?;
        pairs
            .iter()
            .map(|(k, val)| {
                let key = K::from_value(&Value::Str(k.clone()))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn map_keys_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u64);
        m.insert("a".to_string(), 2u64);
        match m.to_value() {
            Value::Object(pairs) => {
                assert_eq!(pairs[0].0, "a");
                assert_eq!(pairs[1].0, "b");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
