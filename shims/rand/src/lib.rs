//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! *subset* of `rand`'s API it actually uses: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits, integer/float `gen_range`, `gen`, and a minimal
//! `distributions::Uniform`. Semantics (not bit-streams) match upstream;
//! every consumer in this workspace only relies on determinism-per-seed,
//! never on specific values.

use std::ops::{Range, RangeInclusive};

/// Source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is ~span/2^64 — irrelevant for simulation seeds.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                if hi < <$t>::MAX {
                    <$t>::sample_half_open(rng, lo, hi + 1)
                } else if lo > <$t>::MIN {
                    <$t>::sample_half_open(rng, lo - 1, hi).wrapping_add(1)
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types drawable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draw a standard value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Draw from the standard distribution of `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! Minimal `rand::distributions` stand-in (`Uniform` over `f64`).

    use super::{unit_f64, RngCore};

    /// A distribution that can be sampled.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform {
        lo: f64,
        hi: f64,
    }

    impl Uniform {
        /// New uniform distribution over `[lo, hi)`.
        pub fn new(lo: f64, hi: f64) -> Self {
            assert!(lo < hi, "Uniform::new: empty range");
            Uniform { lo, hi }
        }
    }

    impl Distribution<f64> for Uniform {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.lo + unit_f64(rng.next_u64()) * (self.hi - self.lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so bits are well mixed.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = r.gen_range(3..=17);
            assert!((3..=17).contains(&w));
            let x: f64 = r.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
            let b: u32 = r.gen_range(20..62);
            assert!((20..62).contains(&b));
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_distribution_mean() {
        use distributions::{Distribution, Uniform};
        let d = Uniform::new(0.0, 2.0);
        let mut r = Counter(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }
}
