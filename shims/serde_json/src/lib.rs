//! Offline stand-in for `serde_json`: text rendering and parsing for the
//! shimmed `serde` [`Value`] tree.
//!
//! Supports the full JSON grammar this workspace produces: objects, arrays,
//! strings with escapes, integers, floats (shortest-roundtrip via `{:?}`),
//! booleans and null. Compact and 2-space-pretty writers, recursive-descent
//! reader.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize to pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Parse JSON text into a raw [`Value`] tree.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    from_str::<ValueWrapper>(s).map(|w| w.0)
}

struct ValueWrapper(Value);

impl Deserialize for ValueWrapper {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(ValueWrapper(v.clone()))
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {x}")));
            }
            // `{:?}` is Rust's shortest-roundtrip form and always includes a
            // decimal point or exponent, so it reads back as F64.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.eat_keyword("\\u") {
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| {
                                Error(format!("invalid \\u escape at byte {}", self.pos))
                            })?);
                        }
                        other => {
                            return Err(Error(format!(
                                "unknown escape `\\{}` at byte {}",
                                other as char, self.pos
                            )))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("a \"b\"\n".to_string())),
            ("count".to_string(), Value::U64(3)),
            ("delta".to_string(), Value::I64(-4)),
            ("x".to_string(), Value::F64(0.1)),
            (
                "items".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(true), Value::F64(1.0)]),
            ),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        let wrapped = ValueWrapper(v.clone());
        struct W<'a>(&'a Value);
        impl Serialize for W<'_> {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&W(&wrapped.0)).unwrap();
        let back = value_from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&W(&wrapped.0)).unwrap();
        let back2 = value_from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.123_456_789_012_345_67_f64;
        struct F(f64);
        impl Serialize for F {
            fn to_value(&self) -> Value {
                Value::F64(self.0)
            }
        }
        let s = to_string(&F(x)).unwrap();
        let y: f64 = from_str(&s).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
