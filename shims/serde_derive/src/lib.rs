//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the item's token stream (no `syn`/`quote` available offline)
//! and emits `impl serde::Serialize` / `impl serde::Deserialize` blocks
//! against the shimmed `serde` Value-tree API. Supports exactly the shapes
//! this workspace derives on: non-generic named/tuple/unit structs and
//! enums with unit/tuple/struct variants. Field *types* are never parsed —
//! the generated code leans on inference (`serde::Deserialize::from_value`
//! inside struct/variant literals).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple fields: arity only.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`) starting at
/// `i`; returns the next interesting index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a token list at top-level commas (angle-bracket depth 0).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse `{ a: T, b: U }` field names.
fn parse_named_fields(group: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(group)
        .iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let i = skip_attrs_and_vis(seg, 0);
            match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive shim: expected field name, got {other}"),
            }
        })
        .collect()
}

/// Parse `(T, U, ...)` arity.
fn parse_tuple_arity(group: &[TokenTree]) -> usize {
    split_top_level_commas(group)
        .iter()
        .filter(|seg| !seg.is_empty())
        .count()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported ({name})");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(parse_tuple_arity(&inner))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive shim: unsupported struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive shim: expected enum body, got {other:?}"),
            };
            let body_tokens: Vec<TokenTree> = body.into_iter().collect();
            let variants = split_top_level_commas(&body_tokens)
                .iter()
                .filter(|seg| !seg.is_empty())
                .map(|seg| {
                    let j = skip_attrs_and_vis(seg, 0);
                    let vname = match &seg[j] {
                        TokenTree::Ident(id) => id.to_string(),
                        other => panic!("serde_derive shim: expected variant name, got {other}"),
                    };
                    let fields = match seg.get(j + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            Fields::Named(parse_named_fields(&inner))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            Fields::Tuple(parse_tuple_arity(&inner))
                        }
                        None => Fields::Unit,
                        other => {
                            panic!("serde_derive shim: unsupported variant body: {other:?}")
                        }
                    };
                    Variant {
                        name: vname,
                        fields,
                    }
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "serde::Value::Null".to_string(),
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect();
                    format!("serde::Value::Object(vec![{}])", pairs.join(", "))
                }
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let pairs: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 match self {{\n{}\n}}\n\
                 }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{{ let _ = v; Ok({name}) }}"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&arr[{i}])?"))
                        .collect();
                    format!(
                        "{{\n\
                         let arr = v.as_array().ok_or_else(|| serde::Error::expected(\"array\", \"{name}\"))?;\n\
                         if arr.len() != {n} {{ return Err(serde::Error::expected(\"array of {n}\", \"{name}\")); }}\n\
                         Ok({name}({}))\n\
                         }}",
                        elems.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: serde::Deserialize::from_value(serde::field(obj, \"{f}\")?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "{{\n\
                         let obj = v.as_object().ok_or_else(|| serde::Error::expected(\"object\", \"{name}\"))?;\n\
                         Ok({name} {{\n{}\n}})\n\
                         }}",
                        inits.join("\n")
                    )
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let arr = inner.as_array().ok_or_else(|| serde::Error::expected(\"array\", \"{name}::{vn}\"))?;\n\
                                 if arr.len() != {n} {{ return Err(serde::Error::expected(\"array of {n}\", \"{name}::{vn}\")); }}\n\
                                 Ok({name}::{vn}({}))\n\
                                 }}",
                                elems.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(serde::field(fobj, \"{f}\")?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let fobj = inner.as_object().ok_or_else(|| serde::Error::expected(\"object\", \"{name}::{vn}\"))?;\n\
                                 Ok({name}::{vn} {{\n{}\n}})\n\
                                 }}",
                                inits.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 match v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n\
                 {}\n\
                 other => Err(serde::Error(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }},\n\
                 serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {}\n\
                 other => Err(serde::Error(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(serde::Error::expected(\"string or single-key object\", \"{name}\")),\n\
                 }}\n\
                 }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}

/// Derive `serde::Serialize` (Value-tree form) for a non-generic item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim: generated Serialize impl did not parse")
}

/// Derive `serde::Deserialize` (Value-tree form) for a non-generic item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl did not parse")
}
