//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's `harness = false` benches use
//! (`Criterion`, `benchmark_group`, `bench_with_input`, `bench_function`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`) with a simple
//! adaptive wall-clock loop: warm up briefly, then run batches until either
//! the requested sample count or a time budget is reached, and print the
//! mean per-iteration time. No statistics, plots or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Top-level bench context.
pub struct Criterion {
    /// Per-benchmark measurement budget.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--quick` (or being invoked via `cargo test`) shrinks the budget so
        // a full bench binary run stays cheap in CI.
        let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
        Criterion {
            budget: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(400)
            },
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples to aim for.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure that receives its input by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.budget, self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.budget, self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.0);
        self
    }

    /// End the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Runs and times the measured closure.
pub struct Bencher {
    budget: Duration,
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(budget: Duration, sample_size: usize) -> Self {
        Bencher {
            budget,
            sample_size,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `f`, adaptively choosing the iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup iteration (pulls code and data into cache).
        std::hint::black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if iters >= self.sample_size as u64 || start.elapsed() >= self.budget {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no measurement (Bencher::iter never called)");
            return;
        }
        let per_iter = self.total.as_secs_f64() / self.iters as f64;
        println!(
            "{group}/{id}: {:>12} /iter  ({} iters)",
            format_time(per_iter),
            self.iters
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export so existing `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Bundle bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                (0..n).sum::<u64>()
            });
        });
        g.bench_function(BenchmarkId::from_parameter("noop"), |b| b.iter(|| ()));
        g.finish();
        assert!(calls >= 3);
    }
}
